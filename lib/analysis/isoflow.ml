(** Isoflow — whole-machine cross-domain reachability analyzer.

    SkyBridge's security argument is ultimately a memory-reachability
    claim: a client that VMFUNCs into a server's EPTP slot must gain
    {e exactly} the mappings the binding granted — no writable aliases,
    no cross-domain W^X, no stale frames left behind by restart/rebind.
    The per-structure auditors ({!Gadget}, {!Ept_check}, {!Tramp_check})
    each judge one layer; this pass judges the {e composition}: for every
    registered domain and every EPTP slot it can reach via VMFUNC, walk
    the guest page tables {e through} that slot's EPT (the CR3-remap
    trick makes slot [k]'s view the server's address space, §4.3) and
    compute the set of physical frames reachable with R/W/X. The
    effective permission of a leaf is the conjunction of both layers:
    readable iff both map it, writable iff PT {e and} EPT allow writes,
    executable iff the PT leaf is not NX {e and} the EPT leaf has the
    execute bit.

    The result is a {e sharing graph} — edges (frame, effective address
    space, {r,w,x}) — over which the least-privilege invariants run,
    with the mesh capability closure as ground truth:

    - [flow.shared-writable] — a frame writable from ≥ 2 address spaces
      must be a registered shared buffer (a live binding's buffer
      frames). Anything else is a writable alias: a revoked binding
      whose buffers were never unmapped, a forged mapping, a kernel bug.
    - [flow.wx-cross] — no frame may be writable in space A and
      executable in space B (A ≠ B): cross-domain code injection even
      when each space is individually W^X.
    - [flow.tramp-identical] — in {e every} view the trampoline VA must
      translate to the one shared trampoline frame, execute-only, with
      byte-identical content: no per-domain divergence of the only
      VMFUNC-bearing page (§4.4).
    - [flow.closure] — every cross-domain view (an EPTP slot whose
      CR3-remap lands in another process's address space) must be
      covered by the [granted] ground truth — the mesh capability
      dependency closure when a mesh is running, the binding registry
      otherwise. EPT-level reachability ⊆ authority.
    - [flow.slot-escape] — no VMFUNC-reachable EPTP slot (per-domain
      installed lists and the live per-core VMCS lists) may point
      outside the EPT roots the domain's bindings entitle it to. In
      particular a registered process must never see the base EPT's
      identity RWX view in a switchable slot.
    - [flow.pkru-escape] — under the MPK backend, a domain's resting
      PKRU view must grant write access to at most its own protection
      key and the shared-buffer key; another domain's key writable at
      rest is the MPK analogue of a leaked EPTP slot.

    A {e differential mode} ({!graph} / {!diff} / {!stale}) snapshots
    the sharing graph before and after a scenario: crash → restart →
    rebind must leave no stale writable edge behind — the chaos/mesh
    gate. *)

open Sky_mmu

type space = {
  s_pid : int;
  s_name : string;
  s_cr3 : int;  (** PT root frame (host-physical = identity GPA) *)
}

type domain = {
  d_pid : int;
  d_name : string;
  d_cr3 : int;  (** the domain's own CR3 (a GPA under the base EPT) *)
  d_slots : (int * int) list;
      (** (EPTP slot index, EPT root PA): the views reachable by VMFUNC
          when this domain runs — slot 0 its own EPT, then one per
          installed binding *)
  d_allowed : int list;
      (** every EPT root a live binding entitles this domain to (its own
          EPT plus each binding EPT, installed or evicted) *)
}

type region = {
  r_name : string;
  r_pa : int;
  r_len : int;  (** bytes; [r_pa, r_pa + r_len) is legitimately shared *)
}

(* The MPK backend's analogue of the EPTP-slot picture: each domain owns
   a protection key and a resting PKRU view. The escape question becomes
   "which keys does a resting view grant?" rather than "which EPT roots
   can a slot reach?". *)
type mpk_domain = {
  m_pid : int;
  m_name : string;
  m_key : int;  (** the protection key tagging this domain's pages *)
  m_view : int;  (** the resting PKRU installed when this domain runs *)
}

type mpk = {
  m_domains : mpk_domain list;
  m_shared_key : int;  (** the key tagging registered shared buffers *)
}

type input = {
  mem : Sky_mem.Phys_mem.t;
  domains : domain list;
  spaces : space list;  (** CR3 → owner, for attributing effective views *)
  shared : region list;  (** the authorized cross-domain writable frames *)
  granted : (int * int) list;
      (** authorized (client pid, effective-space pid) pairs — the
          capability closure ground truth *)
  cores : (string * int option * int list) list;
      (** (core name, running registered pid, non-zero live EPTP slots) *)
  base_root : int;  (** the Rootkernel's base EPT root *)
  trampoline_va : int;
  trampoline_gpa : int;
  trampoline_bytes : bytes;  (** live content of the shared frame *)
  mpk : mpk option;
      (** present when the machine runs the MPK backend — enables
          [flow.pkru-escape] *)
}

(* ---- the composed PT∘EPT walker ---- *)

let ept_translate ~mem ~ept gpa =
  match Ept.walk ~mem ~root_pa:ept ~gpa with
  | Ok { Ept.hpa; _ } -> Some hpa
  | Error (Ept.Ept_not_present _) -> None

let ept_translate_flags ~mem ~ept gpa =
  match Ept.walk ~mem ~root_pa:ept ~gpa with
  | Error (Ept.Ept_not_present _) -> None
  | Ok { Ept.hpa; _ } -> (
    match Ept.walk_flags ~mem ~root_pa:ept ~gpa with
    | Ok (_, flags) -> Some (hpa, flags)
    | Error _ -> None)

type eff = { f_r : bool; f_w : bool; f_x : bool }

let effective (pt : Pte.flags) (ept : Pte.flags) =
  {
    f_r = pt.Pte.present && ept.Pte.present;
    f_w = pt.Pte.writable && ept.Pte.writable;
    (* EPT reading of the bits: bit 2 ("user") = execute *)
    f_x = (not pt.Pte.nx) && ept.Pte.user;
  }

(* Visit every 4 KiB leaf of the guest page table rooted at [cr3_hpa],
   reading every table page and translating every stored pointer through
   [ept] — the walk the hardware performs in non-root mode. EPT holes
   simply truncate reachability (they fault, they do not map). *)
let iter_view ~mem ~ept ~cr3_hpa f =
  let rec go table_hpa level va_base =
    for e = 0 to 511 do
      let v = Sky_mem.Phys_mem.read_u64 mem (table_hpa + (e * 8)) in
      if Pte.is_present v then begin
        let pa, flags = Pte.decode v in
        let va = va_base lor (e lsl (12 + (9 * level))) in
        if level = 0 then (
          match ept_translate_flags ~mem ~ept pa with
          | None -> ()
          | Some (hpa, eflags) ->
            f ~va ~gpa:pa ~hpa ~eff:(effective flags eflags))
        else
          match ept_translate ~mem ~ept pa with
          | None -> ()
          | Some child -> go child (level - 1) va
      end
    done
  in
  go cr3_hpa 3 0

(* Translate a single VA through the composed walk. *)
let walk_view ~mem ~ept ~cr3_hpa va =
  let rec go table_hpa level =
    let e = Page_table.va_index ~level va in
    let v = Sky_mem.Phys_mem.read_u64 mem (table_hpa + (e * 8)) in
    if not (Pte.is_present v) then None
    else
      let pa, flags = Pte.decode v in
      if level = 0 then
        match ept_translate_flags ~mem ~ept pa with
        | None -> None
        | Some (hpa, eflags) -> Some (hpa, effective flags eflags)
      else
        match ept_translate ~mem ~ept pa with
        | None -> None
        | Some child -> go child (level - 1)
  in
  go cr3_hpa 3

(* The effective CR3 of a view: the domain's CR3 GPA pushed through the
   slot's EPT. The identity base EPT leaves it in place; a binding EPT's
   remap turns it into the server's CR3 — the whole §4.3 trick. *)
let effective_cr3 ~mem ~ept cr3_gpa = ept_translate ~mem ~ept cr3_gpa

let space_of inp cr3 =
  List.find_opt (fun s -> s.s_cr3 = cr3) inp.spaces

let space_pid inp cr3 =
  match space_of inp cr3 with Some s -> s.s_pid | None -> -1

let space_name inp pid =
  match List.find_opt (fun s -> s.s_pid = pid) inp.spaces with
  | Some s -> s.s_name
  | None -> Printf.sprintf "pid%d" pid

(* ---- the sharing graph ---- *)

type edge = {
  e_frame : int;  (** host-physical frame base *)
  e_space : int;  (** pid of the effective address space *)
  e_r : bool;
  e_w : bool;
  e_x : bool;
}

type graph = edge list  (* canonical: sorted by (frame, space) *)

(* Distinct (EPT root, effective cr3, effective space) views of a domain
   — dummy slots repeat the own root, so dedupe before walking. *)
let domain_views inp d =
  List.filter_map
    (fun (_, root) ->
      match effective_cr3 ~mem:inp.mem ~ept:root d.d_cr3 with
      | None -> None
      | Some cr3 -> Some (root, cr3, space_pid inp cr3))
    d.d_slots
  |> List.sort_uniq compare

let graph inp =
  let acc = Hashtbl.create 1024 in
  List.iter
    (fun d ->
      List.iter
        (fun (root, cr3, spid) ->
          iter_view ~mem:inp.mem ~ept:root ~cr3_hpa:cr3
            (fun ~va:_ ~gpa:_ ~hpa ~eff ->
              let key = (hpa land lnot 0xfff, spid) in
              let r, w, x =
                match Hashtbl.find_opt acc key with
                | Some rwx -> rwx
                | None -> (false, false, false)
              in
              Hashtbl.replace acc key
                (r || eff.f_r, w || eff.f_w, x || eff.f_x)))
        (domain_views inp d))
    inp.domains;
  Hashtbl.fold
    (fun (frame, spid) (r, w, x) l ->
      { e_frame = frame; e_space = spid; e_r = r; e_w = w; e_x = x } :: l)
    acc []
  |> List.sort compare

let in_shared inp frame =
  List.exists (fun r -> frame >= r.r_pa && frame < r.r_pa + r.r_len) inp.shared

(* ---- the five invariants ---- *)

let check_shared_writable inp g vs =
  let writers = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.e_w then
        let l = Option.value (Hashtbl.find_opt writers e.e_frame) ~default:[] in
        Hashtbl.replace writers e.e_frame (e.e_space :: l))
    g;
  Hashtbl.iter
    (fun frame spaces ->
      let spaces = List.sort_uniq compare spaces in
      if List.length spaces >= 2 && not (in_shared inp frame) then
        vs :=
          Report.v ~addr:frame ~invariant:"flow.shared-writable" ~image:"frame"
            (Printf.sprintf
               "frame writable from %d address spaces (%s) but not a \
                registered shared buffer"
               (List.length spaces)
               (String.concat ", " (List.map (space_name inp) spaces)))
          :: !vs)
    writers

let check_wx_cross inp g vs =
  let by_frame = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let w, x =
        Option.value (Hashtbl.find_opt by_frame e.e_frame) ~default:([], [])
      in
      Hashtbl.replace by_frame e.e_frame
        ((if e.e_w then e.e_space :: w else w),
         if e.e_x then e.e_space :: x else x))
    g;
  Hashtbl.iter
    (fun frame (w, x) ->
      List.iter
        (fun ws ->
          List.iter
            (fun xs ->
              if ws <> xs then
                vs :=
                  Report.v ~addr:frame ~invariant:"flow.wx-cross"
                    ~image:"frame"
                    (Printf.sprintf
                       "frame writable in %s and executable in %s"
                       (space_name inp ws) (space_name inp xs))
                  :: !vs)
            (List.sort_uniq compare x))
        (List.sort_uniq compare w))
    by_frame

let check_trampoline inp vs =
  List.iter
    (fun d ->
      List.iter
        (fun (root, cr3, spid) ->
          let view =
            Printf.sprintf "%s/view:%s" d.d_name (space_name inp spid)
          in
          let fail detail =
            vs :=
              Report.v ~addr:inp.trampoline_va
                ~invariant:"flow.tramp-identical" ~image:view detail
              :: !vs
          in
          match walk_view ~mem:inp.mem ~ept:root ~cr3_hpa:cr3 inp.trampoline_va
          with
          | None -> fail "trampoline va unreachable in this view"
          | Some (hpa, eff) ->
            if not eff.f_x then fail "trampoline not executable in this view";
            if eff.f_w then fail "trampoline writable in this view";
            if hpa land lnot 0xfff <> inp.trampoline_gpa then
              fail
                (Printf.sprintf
                   "trampoline va resolves to frame %#x, not the shared \
                    frame %#x"
                   (hpa land lnot 0xfff) inp.trampoline_gpa)
            else begin
              let n = Bytes.length inp.trampoline_bytes in
              let live = Sky_mem.Phys_mem.read_bytes inp.mem hpa n in
              if not (Bytes.equal live inp.trampoline_bytes) then
                fail "trampoline content diverges in this view"
            end)
        (domain_views inp d))
    inp.domains

let check_closure inp vs =
  List.iter
    (fun d ->
      List.iter
        (fun (_, cr3, spid) ->
          if spid = -1 then
            vs :=
              Report.v ~addr:cr3 ~invariant:"flow.closure" ~image:d.d_name
                (Printf.sprintf
                   "EPTP slot lands in an unattributable address space \
                    (cr3 %#x)"
                   cr3)
              :: !vs
          else if spid <> d.d_pid && not (List.mem (d.d_pid, spid) inp.granted)
          then
            vs :=
              Report.v ~addr:cr3 ~invariant:"flow.closure" ~image:d.d_name
                (Printf.sprintf
                   "reaches %s's address space without a covering grant"
                   (space_name inp spid))
              :: !vs)
        (domain_views inp d))
    inp.domains

let check_slot_escape inp vs =
  let bad image slot root detail =
    vs :=
      Report.v ~addr:root ~invariant:"flow.slot-escape" ~image
        (Printf.sprintf "slot %d: %s" slot detail)
      :: !vs
  in
  List.iter
    (fun d ->
      List.iter
        (fun (slot, root) ->
          if not (List.mem root d.d_allowed) then
            bad d.d_name slot root
              "EPTP slot outside the domain's registered bindings")
        d.d_slots)
    inp.domains;
  List.iter
    (fun (core, pid, slots) ->
      let allowed =
        match pid with
        | Some p -> (
          match List.find_opt (fun d -> d.d_pid = p) inp.domains with
          | Some d -> d.d_allowed
          | None -> [ inp.base_root ])
        | None -> [ inp.base_root ]
      in
      List.iteri
        (fun slot root ->
          if root <> 0 && not (List.mem root allowed) then
            bad core slot root
              "live VMCS EPTP slot outside the running domain's bindings")
        slots)
    inp.cores

(* The MPK analogue of slot-escape: a domain's {e resting} PKRU view may
   grant write access to exactly its own key and the shared-buffer key.
   Write access to another domain's key in the resting view is an escape
   — the elevated server view only ever lives inside the call gate,
   between the paired WRPKRUs, and never rests. Domains sharing a
   (virtualized) key are indistinguishable at the MPK level and are
   skipped; their separation rests on the page-table invariants above. *)
let check_pkru_escape inp vs =
  match inp.mpk with
  | None -> ()
  | Some mpk ->
    List.iter
      (fun d ->
        List.iter
          (fun o ->
            if o.m_pid <> d.m_pid && o.m_key <> d.m_key
               && o.m_key <> mpk.m_shared_key
               && Pkru.allows_write ~pkru:d.m_view ~key:o.m_key
            then
              vs :=
                Report.v ~addr:d.m_view ~invariant:"flow.pkru-escape"
                  ~image:d.m_name
                  (Printf.sprintf
                     "resting PKRU view grants write to %s's key %d"
                     o.m_name o.m_key)
                :: !vs)
          mpk.m_domains)
      mpk.m_domains

let check inp =
  let vs = ref [] in
  let g = graph inp in
  check_shared_writable inp g vs;
  check_wx_cross inp g vs;
  check_trampoline inp vs;
  check_closure inp vs;
  check_slot_escape inp vs;
  check_pkru_escape inp vs;
  Report.sort !vs

(* ---- differential mode ---- *)

type delta = { added : edge list; removed : edge list }

(* Both graphs are canonical (sorted, deduped): merge-walk. *)
let diff ~before ~after =
  let rec go b a added removed =
    match (b, a) with
    | [], [] -> { added = List.rev added; removed = List.rev removed }
    | [], x :: a -> go [] a (x :: added) removed
    | x :: b, [] -> go b [] added (x :: removed)
    | x :: b', y :: a' ->
      let c = compare x y in
      if c = 0 then go b' a' added removed
      else if c < 0 then go b' a added (x :: removed)
      else go b a' (y :: added) removed
  in
  go before after [] []

(* Stale mappings: writable edges the scenario created that no live
   shared region justifies — what crash → restart → rebind must not
   leave behind. *)
let stale ~shared d =
  let covered frame =
    List.exists (fun r -> frame >= r.r_pa && frame < r.r_pa + r.r_len) shared
  in
  List.filter (fun e -> e.e_w && not (covered e.e_frame)) d.added
