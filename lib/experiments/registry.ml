(** Experiment registry: one entry per paper table/figure (plus the
    ablations), consumed by bench/main.ml and bin/skybench.ml. *)

type entry = {
  id : string;
  title : string;
  run : unit -> Sky_harness.Tbl.t;
}

let all =
  [
    { id = "table1"; title = "Table 1: processor-structure pollution";
      run = Exp_kv.run_table1 };
    { id = "table2"; title = "Table 2: instruction latencies"; run = Exp_table2.run };
    { id = "fig2"; title = "Figure 2: KV-store latency (baselines)";
      run = Exp_kv.run_fig2 };
    { id = "fig7"; title = "Figure 7: IPC breakdown"; run = Exp_fig7.run };
    { id = "fig8"; title = "Figure 8: KV-store latency with SkyBridge";
      run = Exp_kv.run_fig8 };
    { id = "table4"; title = "Table 4: SQLite3 operations"; run = Exp_table4.run };
    { id = "fig9"; title = "Figure 9: YCSB-A on seL4"; run = Exp_ycsb.run_fig9 };
    { id = "fig10"; title = "Figure 10: YCSB-A on Fiasco.OC"; run = Exp_ycsb.run_fig10 };
    { id = "fig11"; title = "Figure 11: YCSB-A on Zircon"; run = Exp_ycsb.run_fig11 };
    { id = "table5"; title = "Table 5: Rootkernel virtualization overhead";
      run = Exp_table5.run };
    { id = "table6"; title = "Table 6: inadvertent VMFUNC scan";
      run = (fun () -> Exp_table6.run ()) };
    { id = "gadgets"; title = "Audit: VMFUNC occurrences by case (ERIM-style)";
      run = Exp_audit.run };
    { id = "ablation"; title = "Ablations: design choices"; run = Exp_ablation.run };
    { id = "monolithic"; title = "Extension: SkyBridge on a monolithic kernel (SS10)";
      run = Exp_extensions.run_monolithic };
    { id = "tempmap"; title = "Extension: temporary mapping for long IPC (SS8.1)";
      run = Exp_extensions.run_tempmap };
    { id = "scheduling"; title = "Extension: lazy vs Benno scheduling (SS8.1)";
      run = Exp_scheduling.run };
    { id = "chaos"; title = "Chaos: fault storm + crash recovery census (SS7)";
      run = Exp_chaos.run };
    { id = "web"; title = "Web serving: throughput vs workers, SkyBridge vs slowpath IPC";
      run = Exp_web.run };
    { id = "mesh";
      title = "Service mesh: URI-routed composed stack, hot upgrade + revocation";
      run = Exp_mesh.run };
    { id = "ycsbmix"; title = "Extension: YCSB A/B/C mix sensitivity";
      run = Exp_extensions.run_ycsb_mix };
    { id = "pingpong";
      title = "Pingpong: direct-call cycles under TLB pressure, accel on/off";
      run = Exp_pingpong.run };
    { id = "overload";
      title = "Overload: open-loop load, admission control, chaos at saturation";
      run = Exp_overload.run };
    { id = "matrix";
      title = "Showdown: VMFUNC vs MPK vs filtered syscall, cost + recovery + audit";
      run = Exp_matrix.run };
    { id = "parallel";
      title = "Parallel: quantum-synchronized simulation on OCaml domains";
      run = Exp_parallel.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all
