(** RAM-disk block device (§6.5: "We use a RAM disk device to work as the
    block device and the file system communicates with the device with
    IPC").

    Blocks live in simulated physical memory, so device transfers pull
    real cache lines. Block size is 1024 bytes (xv6's BSIZE). *)

let block_size = 1024

type t = {
  mem : Sky_mem.Phys_mem.t;
  base_pa : int;
  nblocks : int;
  mutable reads : int;
  mutable writes : int;
}

let create machine ~nblocks =
  let mem = machine.Sky_sim.Machine.mem in
  let frames = (nblocks * block_size + 4095) / 4096 in
  let base_pa =
    Sky_mem.Frame_alloc.alloc_frames machine.Sky_sim.Machine.alloc ~count:frames
  in
  { mem; base_pa; nblocks; reads = 0; writes = 0 }

let check t blockno =
  if blockno < 0 || blockno >= t.nblocks then
    invalid_arg (Printf.sprintf "Ramdisk: block %d out of range" blockno)

(* Per-block device-side work: the block's lines stream through the
   serving core's cache hierarchy. *)
let touch cpu t blockno =
  Sky_sim.Memsys.touch_range cpu Sky_sim.Memsys.Data
    ~pa:(t.base_pa + (blockno * block_size))
    ~len:block_size

let read t cpu blockno =
  check t blockno;
  t.reads <- t.reads + 1;
  touch cpu t blockno;
  Sky_mem.Phys_mem.read_bytes t.mem (t.base_pa + (blockno * block_size)) block_size

let write t cpu blockno data =
  check t blockno;
  if Bytes.length data <> block_size then
    invalid_arg "Ramdisk.write: bad block length";
  t.writes <- t.writes + 1;
  touch cpu t blockno;
  Sky_mem.Phys_mem.write_bytes t.mem (t.base_pa + (blockno * block_size)) data

let nblocks t = t.nblocks
let reads t = t.reads
let writes t = t.writes
