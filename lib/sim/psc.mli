(** Paging-structure caches (PML4E / PDPTE / PDE) and the EPT walk
    cache: set-associative, LRU, ASID-tagged maps from an integer key
    (a virtual-address prefix, or a guest page number) to an integer
    payload (the next table's GPA, or a host page number). Backed by
    {!Tlb} storage, so flushes are O(1) and global mapping mutations
    invalidate them lazily via {!Accel}. *)

type t

val create : name:string -> entries:int -> ways:int -> t
val name : t -> string

val lookup : t -> asid:int -> key:int -> int option
(** Hit updates LRU state and the hit counter; miss counts a miss. *)

val insert : t -> asid:int -> key:int -> int -> unit

val flush_all : t -> unit
(** O(1) generation bump. *)

val flush_asid : t -> asid:int -> unit
(** O(1) per-ASID floor. *)

val flush_key : t -> key:int -> unit
(** Invalidate [key] under every ASID (INVLPG drops paging-structure
    entries regardless of PCID). *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
