(* Quickstart: boot a simulated machine, slide the SkyBridge Rootkernel
   under a microkernel, register an echo server, and make kernel-less
   direct server calls — the Figure 4 programming model.

   Run with:  dune exec examples/quickstart.exe *)

open Sky_ukernel

let () =
  (* 1. A Skylake-like machine and a seL4-flavoured microkernel. *)
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let kernel = Kernel.create machine in

  (* 2. One line of Subkernel boot code: self-virtualize under the
        Rootkernel (§4.1). *)
  let sb = Sky_core.Subkernel.init kernel in

  (* 3. A server process registers a handler (Figure 4's
        [register_server]). Its binary is scanned for illegal VMFUNC
        instructions on the way in. *)
  let server = Kernel.spawn kernel ~name:"echo-server" in
  let server_id =
    Sky_core.Subkernel.register_server sb server ~connection_count:8
      (fun ~core:_ msg -> Bytes.cat (Bytes.of_string "echo: ") msg)
  in
  Printf.printf "registered echo server as id %d\n" server_id;

  (* 4. A client binds to it ([register_client_to_server]): the
        Rootkernel builds the CR3-remapped EPT and a calling key. *)
  let client = Kernel.spawn kernel ~name:"client" in
  Sky_core.Subkernel.register_client_to_server sb client ~server_id;
  Kernel.context_switch kernel ~core:0 client;

  (* 5. direct_server_call: no syscall, no VM exit — two VMFUNCs. *)
  let cpu = Kernel.cpu kernel ~core:0 in
  let reply =
    Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id
      (Bytes.of_string "hello skybridge")
  in
  Printf.printf "reply: %s\n" (Bytes.to_string reply);

  (* Steady-state cost of a roundtrip (the paper's 396 cycles, §6.3). *)
  let root = Sky_core.Subkernel.rootkernel sb in
  let exits_before = Sky_core.Rootkernel.total_vm_exits root in
  let t0 = Sky_sim.Cpu.cycles cpu in
  let n = 1000 in
  for _ = 1 to n do
    ignore
      (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id
         (Bytes.of_string "ping"))
  done;
  Printf.printf "direct call roundtrip: %d cycles (paper: 396)\n"
    ((Sky_sim.Cpu.cycles cpu - t0) / n);
  Printf.printf "VM exits during the %d calls: %d (kernel not involved)\n" n
    (Sky_core.Rootkernel.total_vm_exits root - exits_before);
  Printf.printf "total VM exits since boot: %d (registration only)\n"
    (Sky_core.Rootkernel.total_vm_exits root)
