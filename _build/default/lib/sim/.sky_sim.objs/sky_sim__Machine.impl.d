lib/sim/machine.ml: Array Cache Cpu Sky_mem
