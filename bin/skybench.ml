(* skybench: run one (or all) of the paper's tables/figures.

   Usage:
     skybench list
     skybench run table4
     skybench run all
     skybench run table4 --json                     (machine-readable table)
     skybench run fig9 --records 10000 --ops 1000   (paper-scale YCSB)
     skybench trace fig7 -o trace.json              (Chrome/Perfetto trace) *)

open Cmdliner

(* Every command takes --backend: the isolation mechanism carrying the
   mediated calls (VMFUNC EPTP switching, ERIM-style MPK, or the
   filtered-syscall slowpath). It sets the process-wide default that
   Subkernel.init picks up, so every experiment runs unchanged against
   whichever mechanism was selected. *)
let backend_arg =
  let parse s =
    match Sky_core.Backend.of_string s with
    | Some k -> Ok k
    | None ->
      Error (`Msg (Printf.sprintf "unknown backend %S (try vmfunc|mpk|syscall)" s))
  in
  let backend_conv = Arg.conv (parse, Sky_core.Backend.pp) in
  Arg.(
    value
    & opt backend_conv Sky_core.Backend.Vmfunc
    & info [ "backend" ] ~docv:"MECH"
        ~doc:
          "Isolation backend carrying the direct calls: $(b,vmfunc) (EPTP \
           switching, the paper's mechanism), $(b,mpk) (WRPKRU call gate) \
           or $(b,syscall) (filtered kernel slowpath).")

let set_backend k = Sky_core.Backend.set_default k

(* --jobs N: run N identical replicas of the experiment concurrently on
   separate OCaml domains, each inside its own scoped simulator world,
   and fail unless every replica renders byte-identically. The printed
   result (and any artifact) is replica 0's, so output is unchanged
   from --jobs 1. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Run $(docv) identical replicas of the experiment on separate \
           OCaml domains, each in its own scoped simulator world, failing \
           unless all replicas produce byte-identical results — the \
           parallel-determinism smoke test. Output is replica 0's.")

let replicate ~jobs ~render f = Sky_experiments.Par_harness.replicate ~jobs ~render f

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-10s %s\n" e.Sky_experiments.Registry.id
          e.Sky_experiments.Registry.title)
      Sky_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* Host wall-clock of producing a result; recorded in BENCH artifacts
   next to the simulated cycles (stdout JSON stays byte-deterministic). *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* With --json, every result is also archived as BENCH_<id>.json so CI
   can glob one pattern and benchmark trajectories survive the run. *)
let emit ?artifact ~json run =
  let tbl, host_seconds = timed run in
  if json then begin
    let j = Sky_harness.Tbl.to_json tbl in
    print_endline j;
    match artifact with
    | Some name ->
      let path = Sky_harness.Artifact.write ~name ~host_seconds j in
      Printf.eprintf "wrote %s (%.2fs host)\n" path host_seconds
    | None -> ()
  end
  else Sky_harness.Tbl.print tbl

let run_one ~records ~ops ~json ~wrap id =
  match id with
  | "fig9" | "fig10" | "fig11" when records <> None || ops <> None ->
    let variant =
      match id with
      | "fig9" -> Sky_ukernel.Config.Sel4
      | "fig10" -> Sky_ukernel.Config.Fiasco
      | _ -> Sky_ukernel.Config.Zircon
    in
    emit ~artifact:id ~json
      (wrap (fun () ->
           Sky_experiments.Exp_ycsb.run_variant ?records ?ops_per_thread:ops
             variant))
  | _ -> (
    match Sky_experiments.Registry.find id with
    | Some e -> emit ~artifact:id ~json (wrap e.Sky_experiments.Registry.run)
    | None ->
      Printf.eprintf "unknown experiment %S; try `skybench list`\n" id;
      exit 1)

let run_cmd =
  let doc = "Run an experiment by id (or `all`)." in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let records =
    Arg.(value & opt (some int) None & info [ "records" ] ~doc:"YCSB table size")
  in
  let ops =
    Arg.(value & opt (some int) None & info [ "ops" ] ~doc:"YCSB ops per thread")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the result table as JSON.")
  in
  let run id records ops json jobs backend =
    set_backend backend;
    let wrap r () = replicate ~jobs ~render:Sky_harness.Tbl.to_json r in
    if id = "all" then
      List.iter
        (fun e ->
          emit ~artifact:e.Sky_experiments.Registry.id ~json
            (wrap e.Sky_experiments.Registry.run);
          if not json then print_newline ())
        Sky_experiments.Registry.all
    else run_one ~records ~ops ~json ~wrap id
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ id $ records $ ops $ json $ jobs_arg $ backend_arg)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let trace_cmd =
  let doc =
    "Run an experiment with the cycle tracer enabled; print its latency \
     histograms and per-category cycle attribution, and write a Chrome \
     trace_event JSON loadable in chrome://tracing or Perfetto."
  in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Trace output path (default $(docv) = <ID>.trace.json).")
  in
  let folded =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:"Also write folded stacks for flamegraph.pl / speedscope.")
  in
  let run id out folded backend =
    set_backend backend;
    match Sky_experiments.Registry.find id with
    | None ->
      Printf.eprintf "unknown experiment %S; try `skybench list`\n" id;
      exit 1
    | Some e ->
      Sky_trace.Trace.enable ();
      let tbl = e.Sky_experiments.Registry.run () in
      Sky_trace.Trace.disable ();
      Sky_harness.Tbl.print tbl;
      print_newline ();
      Sky_harness.Tbl.print
        (Sky_harness.Tbl.of_categories
           ~title:(Printf.sprintf "%s: cycle attribution by trace category" id)
           (Sky_trace.Trace.categories ()));
      print_newline ();
      Sky_harness.Tbl.print
        (Sky_harness.Tbl.of_histograms
           ~title:(Printf.sprintf "%s: span latency histograms (cycles)" id)
           (Sky_trace.Trace.histograms ()));
      let path = match out with Some p -> p | None -> id ^ ".trace.json" in
      write_file path (Sky_trace.Chrome.export ());
      Printf.printf "\nwrote %s (%d events, %d dropped)\n" path
        (List.length (Sky_trace.Trace.events ()))
        (Sky_trace.Trace.dropped ());
      (match folded with
      | Some p ->
        write_file p (Sky_trace.Folded.export ());
        Printf.printf "wrote %s\n" p
      | None -> ());
      Sky_trace.Trace.clear ()
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ id $ out $ folded $ backend_arg)

let audit_cmd =
  let doc =
    "Statically audit SkyBridge's security invariants: boot each kernel \
     personality, register a client/server/dependency topology (including \
     a client shipping C1/C2/C3 VMFUNC encodings), run traffic, then \
     verify no VMFUNC gadget survives outside the trampoline, EPT and \
     guest page tables are W^X with an execute-only trampoline, EPTP-list \
     slots are valid, and the trampoline code abstract-interprets \
     correctly. Exit code 0 iff every invariant holds."
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit violations as JSON.")
  in
  let run json jobs backend =
    set_backend backend;
    let viols prs = Sky_analysis.Audit.violations prs in
    (* Replica comparison renders names + violations only: per-pass
       timings are host wall-clock and legitimately differ. *)
    let render scenarios =
      String.concat ";"
        (List.map
           (fun (name, prs) ->
             name ^ "=" ^ Sky_analysis.Report.list_to_json (viols prs))
           scenarios)
    in
    let scenarios =
      replicate ~jobs ~render Sky_experiments.Exp_audit.scenarios
    in
    let total =
      List.fold_left
        (fun acc (_, prs) -> acc + List.length (viols prs))
        0 scenarios
    in
    if json then begin
      let pass_json (pr : Sky_analysis.Audit.pass_result) =
        Printf.sprintf "{\"pass\":\"%s\",\"ms\":%.3f,\"violations\":%s}"
          pr.Sky_analysis.Audit.pr_name pr.Sky_analysis.Audit.pr_ms
          (Sky_analysis.Report.list_to_json pr.Sky_analysis.Audit.pr_violations)
      in
      let scenario_json (name, prs) =
        let vs = viols prs in
        Printf.sprintf
          "{\"scenario\":\"%s\",\"ok\":%b,\"passes\":[%s],\"violations\":%s}"
          name (vs = [])
          (String.concat "," (List.map pass_json prs))
          (Sky_analysis.Report.list_to_json vs)
      in
      Printf.printf "{\"ok\":%b,\"passes\":[%s],\"scenarios\":[%s]}\n"
        (total = 0)
        (String.concat ","
           (List.map (Printf.sprintf "\"%s\"") Sky_analysis.Audit.pass_names))
        (String.concat "," (List.map scenario_json scenarios))
    end
    else
      List.iter
        (fun (name, prs) ->
          let timing =
            String.concat " "
              (List.map
                 (fun (pr : Sky_analysis.Audit.pass_result) ->
                   Printf.sprintf "%s:%.2fms" pr.Sky_analysis.Audit.pr_name
                     pr.Sky_analysis.Audit.pr_ms)
                 prs)
          in
          match viols prs with
          | [] ->
            Printf.printf "scenario %-8s OK (0 violations) [%s]\n" name timing
          | vs ->
            Printf.printf "scenario %-8s FAIL (%d violations) [%s]\n" name
              (List.length vs) timing;
            List.iter
              (fun v ->
                Printf.printf "  %s\n" (Sky_analysis.Report.to_string v))
              vs)
        scenarios;
    if total > 0 then exit 1
  in
  Cmd.v (Cmd.info "audit" ~doc) Term.(const run $ json $ jobs_arg $ backend_arg)

let chaos_cmd =
  let doc =
    "Run the KV pipeline, the SQLite/xv6fs stack, the web stack and the \
     URI-routed service mesh under a seeded, deterministic fault storm \
     (crashes, hangs, dropped replies, EPT faults, binding revocation) \
     and report the recovery census: \
     recovered, degraded (slowpath) and lost calls, server restarts, \
     forced §7 returns, post-storm audit and fsck. The same seed yields \
     a bit-identical census. Exit code 0 iff no call was lost, the \
     post-storm audit is clean, and the file system checks out."
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fault-plan seed.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the census as JSON.")
  in
  let run seed json jobs backend =
    set_backend backend;
    let c =
      replicate ~jobs ~render:Sky_experiments.Exp_chaos.census_to_json
        (fun () -> Sky_experiments.Exp_chaos.run_chaos ~seed)
    in
    if json then print_endline (Sky_experiments.Exp_chaos.census_to_json c)
    else Sky_harness.Tbl.print (Sky_experiments.Exp_chaos.census_table c);
    if not (Sky_experiments.Exp_chaos.clean c) then exit 1
  in
  Cmd.v
    (Cmd.info "chaos" ~doc)
    Term.(const run $ seed $ json $ jobs_arg $ backend_arg)

let web_cmd =
  let doc =
    "Run the web-serving macro-benchmark: closed-loop load generator → \
     RSS NIC → N skyhttpd workers (one per core) → KV + xv6fs backends, \
     sweeping worker counts 1..cores with the worker→backend hop over \
     SkyBridge direct calls and over the baseline kernel's synchronous \
     IPC. Writes BENCH_web.json with --json. Exit code 0 iff every \
     request was served and validated, SkyBridge throughput beats the \
     slowpath at every worker count, and SkyBridge throughput scales \
     monotonically with workers."
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let cores =
    Arg.(value & opt int 16 & info [ "cores" ] ~doc:"Simulated cores (= max workers).")
  in
  let conns =
    Arg.(
      value
      & opt int Sky_net.Web.default_conns
      & info [ "conns" ] ~doc:"Concurrent connections.")
  in
  let requests =
    Arg.(
      value
      & opt int Sky_net.Web.default_requests_per_conn
      & info [ "requests" ] ~doc:"Requests per connection.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the results as JSON and write BENCH_web.json.")
  in
  let no_accel =
    Arg.(
      value & flag
      & info [ "no-accel" ]
          ~doc:
            "Disable the translation-acceleration structures (PSCs, EPT \
             walk cache, hot lines) for this run — the cache-free \
             reference walker, for host wall-clock comparisons.")
  in
  let run seed cores conns requests json no_accel jobs backend =
    set_backend backend;
    if no_accel then Sky_sim.Accel.set_enabled false;
    let r, host_seconds =
      timed (fun () ->
          replicate ~jobs ~render:Sky_experiments.Exp_web.to_json (fun () ->
              Sky_experiments.Exp_web.run_curve ~seed ~cores ~conns
                ~requests_per_conn:requests ()))
    in
    if json then begin
      let j = Sky_experiments.Exp_web.to_json r in
      print_endline j;
      let path = Sky_harness.Artifact.write ~name:"web" ~host_seconds j in
      Printf.eprintf "wrote %s (%.2fs host)\n" path host_seconds
    end
    else Sky_harness.Tbl.print (Sky_experiments.Exp_web.table r);
    if not (Sky_experiments.Exp_web.ok r) then begin
      Printf.eprintf
        "web: acceptance failed (served=%b sky-ahead=%b monotone=%b)\n"
        (Sky_experiments.Exp_web.all_served r)
        (Sky_experiments.Exp_web.sky_always_ahead r)
        (Sky_experiments.Exp_web.sky_monotone r);
      exit 1
    end
  in
  Cmd.v (Cmd.info "web" ~doc)
    Term.(
      const run $ seed $ cores $ conns $ requests $ json $ no_accel
      $ jobs_arg $ backend_arg)

let mesh_cmd =
  let doc =
    "Run the composed service-mesh scenario: load generator → NIC (2 RX \
     rings) → 4 skyhttpd workers fanned out over one multi-receiver \
     endpoint (work stealing; two workers own no ring at all) → KV + \
     xv6fs + blockdev, every backend hop addressed purely by URI \
     (kv://, fs://, blk://) through the capability-routed mesh. Mid-run \
     the KV service is hot-upgraded make-before-break (grant v2, flip \
     the name, revoke v1) and one worker's fs:// capability is revoked \
     — its requests bounce to privileged peers. Writes BENCH_mesh.json \
     with --json; the JSON is byte-deterministic, so CI diffs two \
     same-seed runs. Exit code 0 iff every request was served and \
     validated, requests fanned out across all workers, both KV \
     generations served traffic, denials were absorbed without loss, \
     and the mesh and subkernel audits are clean."
  in
  let seed =
    Arg.(
      value
      & opt int Sky_experiments.Exp_mesh.default_seed
      & info [ "seed" ] ~doc:"Workload seed.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the result as JSON and write BENCH_mesh.json.")
  in
  let run seed json backend =
    set_backend backend;
    let r, host_seconds =
      timed (fun () -> Sky_experiments.Exp_mesh.run_mesh ~seed ())
    in
    if json then begin
      let j = Sky_experiments.Exp_mesh.to_json r in
      print_endline j;
      let path = Sky_harness.Artifact.write ~name:"mesh" ~host_seconds j in
      Printf.eprintf "wrote %s (%.2fs host)\n" path host_seconds
    end
    else Sky_harness.Tbl.print (Sky_experiments.Exp_mesh.table r);
    if not (Sky_experiments.Exp_mesh.ok r) then begin
      Printf.eprintf
        "mesh: acceptance failed (served=%b fanout=%b upgraded=%b \
         degraded=%b audits=%b lost=%d)\n"
        (Sky_experiments.Exp_mesh.all_served r)
        (Sky_experiments.Exp_mesh.fanned_out r)
        (Sky_experiments.Exp_mesh.upgraded r)
        (Sky_experiments.Exp_mesh.degraded r)
        (Sky_experiments.Exp_mesh.audits_clean r)
        r.Sky_experiments.Exp_mesh.m_lost;
      exit 1
    end
  in
  Cmd.v (Cmd.info "mesh" ~doc) Term.(const run $ seed $ json $ backend_arg)

(* bench/budgets.json is flat enough ({"pingpong":{"cycles_per_call":N}})
   that a substring scan beats pulling in a JSON parser dependency. Finds
   the first integer after ["key":] following ["section":]. *)
let budget_of ~file ~section ~key =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let find_from pos pat =
    let plen = String.length pat in
    let rec go i =
      if i + plen > String.length s then None
      else if String.sub s i plen = pat then Some (i + plen)
      else go (i + 1)
    in
    go pos
  in
  match find_from 0 (Printf.sprintf "\"%s\"" section) with
  | None -> None
  | Some p -> (
    match find_from p (Printf.sprintf "\"%s\"" key) with
    | None -> None
    | Some p ->
      let len = String.length s in
      let rec skip i =
        if i < len && (s.[i] = ':' || s.[i] = ' ') then skip (i + 1) else i
      in
      let start = skip p in
      let rec stop i = if i < len && s.[i] >= '0' && s.[i] <= '9' then stop (i + 1) else i in
      let e = stop start in
      if e > start then Some (int_of_string (String.sub s start (e - start)))
      else None)

let perf_cmd =
  let doc =
    "Run the pingpong perf gate: measure SkyBridge direct-call cycles \
     under TLB pressure with the translation-acceleration structures on \
     and off, write BENCH_pingpong.json, and fail if cycles-per-call \
     (accel on) exceeds the budget in bench/budgets.json by more than \
     2%, or if acceleration does not beat the cache-free walker. The \
     JSON on stdout is byte-deterministic, so CI diffs two same-seed \
     runs to catch nondeterminism."
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the result as JSON.")
  in
  let budgets =
    Arg.(
      value
      & opt string "bench/budgets.json"
      & info [ "budgets" ] ~docv:"FILE" ~doc:"Budget file to gate against.")
  in
  let run json budgets jobs backend =
    set_backend backend;
    let r, host_seconds =
      timed (fun () ->
          replicate ~jobs ~render:Sky_experiments.Exp_pingpong.to_json
            Sky_experiments.Exp_pingpong.run_result)
    in
    if json then begin
      let j = Sky_experiments.Exp_pingpong.to_json r in
      print_endline j;
      let path = Sky_harness.Artifact.write ~name:"pingpong" ~host_seconds j in
      Printf.eprintf "wrote %s (%.2fs host)\n" path host_seconds
    end
    else Sky_harness.Tbl.print (Sky_experiments.Exp_pingpong.table r);
    let cpc = r.Sky_experiments.Exp_pingpong.cycles_per_call in
    let cpc_off = r.Sky_experiments.Exp_pingpong.cycles_per_call_noaccel in
    if cpc >= cpc_off then begin
      Printf.eprintf
        "perf: acceleration does not pay: %d cycles/call on vs %d off\n" cpc
        cpc_off;
      exit 1
    end;
    if Sys.file_exists budgets then
      match budget_of ~file:budgets ~section:"pingpong" ~key:"cycles_per_call" with
      | None ->
        Printf.eprintf "perf: no pingpong.cycles_per_call budget in %s\n" budgets;
        exit 1
      | Some budget ->
        let limit = budget * 102 / 100 in
        if cpc > limit then begin
          Printf.eprintf
            "perf: REGRESSION: %d cycles/call exceeds budget %d (+2%% = %d)\n"
            cpc budget limit;
          exit 1
        end
        else
          Printf.eprintf "perf: %d cycles/call within budget %d (+2%% = %d)\n"
            cpc budget limit
    else Printf.eprintf "perf: %s not found; skipping budget gate\n" budgets
  in
  Cmd.v (Cmd.info "perf" ~doc)
    Term.(const run $ json $ budgets $ jobs_arg $ backend_arg)

let overload_cmd =
  let doc =
    "Run the overload scenario: a closed-loop probe fixes the saturation \
     rate, then an open-loop Poisson generator offers 0.5x-2x that rate \
     to the admission-controlled server (bounded endpoint queues shedding \
     typed 503s, request TTLs propagated as backend timeouts, batched KV \
     crossings, token-bucket retry budgets), re-runs the 2x point under a \
     worker+backend+nameserv fault storm, and drives hundreds of \
     short-lived tenant processes into EPTP-list and global-binding \
     eviction. Writes BENCH_overload.json with --json; the JSON is \
     byte-deterministic, so CI diffs two same-seed runs. Exit code 0 iff \
     every offered request is accounted for with zero lost-or-corrupt \
     admitted requests, goodput at 2x holds the budgeted fraction of \
     saturation, p99.9 of admitted requests stays within budget, the \
     storm was survived with clean audits, and slot-evicted tenants \
     degraded to slowpath instead of failing."
  in
  let seed =
    Arg.(
      value
      & opt int Sky_experiments.Exp_overload.default_seed
      & info [ "seed" ] ~doc:"Workload seed.")
  in
  let workers =
    Arg.(value & opt int 3 & info [ "workers" ] ~doc:"skyhttpd workers.")
  in
  let arrivals =
    Arg.(
      value & opt int 1600
      & info [ "arrivals" ] ~doc:"Open-loop arrivals per sweep point.")
  in
  let scale_tenants =
    Arg.(
      value & opt int 240
      & info [ "scale-tenants" ]
          ~doc:"Short-lived tenant processes in the eviction phase.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the result as JSON and write BENCH_overload.json.")
  in
  let budgets =
    Arg.(
      value
      & opt string "bench/budgets.json"
      & info [ "budgets" ] ~docv:"FILE" ~doc:"Budget file to gate against.")
  in
  let run seed workers arrivals scale_tenants json budgets jobs backend =
    set_backend backend;
    let r, host_seconds =
      timed (fun () ->
          replicate ~jobs ~render:Sky_experiments.Exp_overload.to_json
            (fun () ->
              Sky_experiments.Exp_overload.run_overload ~seed ~workers
                ~total:arrivals ~scale_tenants ()))
    in
    if json then begin
      let j = Sky_experiments.Exp_overload.to_json r in
      print_endline j;
      let path = Sky_harness.Artifact.write ~name:"overload" ~host_seconds j in
      Printf.eprintf "wrote %s (%.2fs host)\n" path host_seconds
    end
    else Sky_harness.Tbl.print (Sky_experiments.Exp_overload.table r);
    (* Structural gates (zero lost/corrupt, sheds under overload, chaos
       survived, tenants evicted) with the built-in goodput floor ... *)
    let floor, floor_src =
      if Sys.file_exists budgets then
        match
          budget_of ~file:budgets ~section:"overload" ~key:"goodput_floor_pct"
        with
        | Some pct -> (float_of_int pct /. 100.0, budgets)
        | None -> (0.5, "default")
      else (0.5, "default")
    in
    if not (Sky_experiments.Exp_overload.ok ~floor r) then begin
      Printf.eprintf
        "overload: acceptance failed (zero_lost=%b goodput_ratio=%.3f \
         floor=%.2f[%s] sheds=%b chaos_active=%b chaos_clean=%b \
         tenants_evicted=%b)\n"
        (Sky_experiments.Exp_overload.zero_lost r)
        (Sky_experiments.Exp_overload.goodput_ratio r)
        floor floor_src
        (Sky_experiments.Exp_overload.overload_sheds r)
        (Sky_experiments.Exp_overload.chaos_active r)
        (Sky_experiments.Exp_overload.chaos_clean r)
        (Sky_experiments.Exp_overload.tenants_evicted r);
      exit 1
    end;
    (* ... and the p99.9 regression budget on admitted requests at 2x. *)
    (if Sys.file_exists budgets then
       match budget_of ~file:budgets ~section:"overload" ~key:"p999_cycles" with
       | None ->
         Printf.eprintf "overload: no overload.p999_cycles budget in %s\n"
           budgets;
         exit 1
       | Some budget ->
         let p999 =
           match
             List.find_opt
               (fun p -> p.Sky_experiments.Exp_overload.p_mult = 2.0)
               r.Sky_experiments.Exp_overload.r_points
           with
           | Some p -> p.Sky_experiments.Exp_overload.p_p999
           | None -> max_int
         in
         let limit = budget * 102 / 100 in
         if p999 > limit then begin
           Printf.eprintf
             "overload: REGRESSION: p99.9 %d cycles exceeds budget %d (+2%% \
              = %d)\n"
             p999 budget limit;
           exit 1
         end
         else
           Printf.eprintf "overload: p99.9 %d within budget %d (+2%% = %d)\n"
             p999 budget limit
     else Printf.eprintf "overload: %s not found; skipping budget gate\n" budgets);
    Printf.eprintf
      "overload: goodput ratio %.3f >= floor %.2f; zero lost/corrupt\n"
      (Sky_experiments.Exp_overload.goodput_ratio r)
      floor
  in
  Cmd.v (Cmd.info "overload" ~doc)
    Term.(
      const run $ seed $ workers $ arrivals $ scale_tenants $ json $ budgets
      $ jobs_arg $ backend_arg)

let matrix_cmd =
  let doc =
    "Run the cross-mechanism showdown: drive the pingpong cost probe, a \
     deterministic crash/hang/revoke mini-storm over the KV pipeline, and \
     the full post-storm audit against all three isolation backends \
     (VMFUNC EPTP switching, ERIM-style MPK, filtered syscall) and emit \
     one cost/security matrix. Writes BENCH_matrix.json with --json; the \
     JSON is byte-deterministic, so CI diffs two same-seed runs. Exit \
     code 0 iff every backend recovers the identical fault schedule with \
     zero lost calls and a clean audit (including the WRPKRU binary scan \
     under MPK and the entry-filter pass under syscall), MPK's cycles per \
     call land strictly below VMFUNC's, and VMFUNC stays within 2% of \
     the pingpong budget in bench/budgets.json."
  in
  let seed =
    Arg.(
      value
      & opt int Sky_experiments.Exp_matrix.default_seed
      & info [ "seed" ] ~doc:"Fault-plan seed.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the matrix as JSON and write BENCH_matrix.json.")
  in
  let budgets =
    Arg.(
      value
      & opt string "bench/budgets.json"
      & info [ "budgets" ] ~docv:"FILE" ~doc:"Budget file to gate against.")
  in
  let run seed json budgets =
    let r = Sky_experiments.Exp_matrix.run_matrix ~seed () in
    if json then begin
      let j = Sky_experiments.Exp_matrix.to_json r in
      print_endline j;
      (* No host_seconds wrapper: the artifact itself is the
         byte-determinism witness CI diffs across two runs. *)
      let path = Sky_harness.Artifact.write ~name:"matrix" j in
      Printf.eprintf "wrote %s\n" path
    end
    else Sky_harness.Tbl.print (Sky_experiments.Exp_matrix.table r);
    if not (Sky_experiments.Exp_matrix.ok r) then begin
      Printf.eprintf
        "matrix: acceptance failed (zero_lost=%b audits_clean=%b \
         mpk_beats_vmfunc=%b recovered=%b)\n"
        (Sky_experiments.Exp_matrix.zero_lost r)
        (Sky_experiments.Exp_matrix.audits_clean r)
        (Sky_experiments.Exp_matrix.mpk_beats_vmfunc r)
        (Sky_experiments.Exp_matrix.recovered_under_storm r);
      exit 1
    end;
    let vmfunc_cpc = Sky_experiments.Exp_matrix.cycles r Sky_core.Backend.Vmfunc in
    (if Sys.file_exists budgets then
       match
         budget_of ~file:budgets ~section:"pingpong" ~key:"cycles_per_call"
       with
       | None ->
         Printf.eprintf "matrix: no pingpong.cycles_per_call budget in %s\n"
           budgets;
         exit 1
       | Some budget ->
         let limit = budget * 102 / 100 in
         if vmfunc_cpc > limit then begin
           Printf.eprintf
             "matrix: REGRESSION: vmfunc %d cycles/call exceeds budget %d \
              (+2%% = %d)\n"
             vmfunc_cpc budget limit;
           exit 1
         end
         else
           Printf.eprintf
             "matrix: vmfunc %d cycles/call within budget %d (+2%% = %d)\n"
             vmfunc_cpc budget limit
     else Printf.eprintf "matrix: %s not found; skipping budget gate\n" budgets);
    Printf.eprintf
      "matrix: mpk %d < vmfunc %d < syscall %d cycles/call; zero lost, \
       clean audits on all backends\n"
      (Sky_experiments.Exp_matrix.cycles r Sky_core.Backend.Mpk)
      vmfunc_cpc
      (Sky_experiments.Exp_matrix.cycles r Sky_core.Backend.Syscall)
  in
  Cmd.v (Cmd.info "matrix" ~doc) Term.(const run $ seed $ json $ budgets)

let parallel_cmd =
  let doc =
    "Run the quantum-scheduler gate: build clusters of independent \
     web-serving shards (each a full machine + skyhttpd + load generator \
     in its own scoped simulator world, with per-shard fault storms \
     armed) and prove the parallel engine is bit-identical to the \
     sequential one — Seq vs Par at the same quantum on every isolation \
     backend, chunked vs unchunked scheduling, and two different quantum \
     sizes — then wall-clock a 4x4-shard cluster sequentially and on \
     OCaml domains for the host-speedup gate. The speedup bar scales \
     with Domain.recommended_domain_count: >=2x with 4+ host domains, \
     reduced for 2-3, and explicitly waived (not faked) on a \
     single-domain host. Writes BENCH_parallel.json with --json; the \
     file is byte-deterministic on a given host, so CI diffs two runs \
     (raw wall seconds go to stderr only). Exit code 0 iff every \
     equivalence digest matches and the speedup gate does not fail."
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the result as JSON and write BENCH_parallel.json.")
  in
  let run seed json backend =
    set_backend backend;
    let r =
      Sky_experiments.Exp_parallel.run_full ~seed ~now:Unix.gettimeofday ()
    in
    if json then begin
      let j = Sky_experiments.Exp_parallel.to_json r in
      print_endline j;
      (* No host_seconds wrapper: the artifact must be byte-deterministic
         across two runs on the same host. Host context (domain count,
         jobs, gate verdict) is stable and rides along. *)
      let path =
        Sky_harness.Artifact.write ~name:"parallel"
          ~host_json:(Sky_experiments.Exp_parallel.host_json r)
          j
      in
      Printf.eprintf "wrote %s\n" path
    end
    else Sky_harness.Tbl.print (Sky_experiments.Exp_parallel.table r);
    Printf.eprintf
      "parallel: %d host domain(s), par jobs=%d, seq %.2fs vs par %.2fs = \
       %.2fx -> gate %s\n"
      r.Sky_experiments.Exp_parallel.r_host_domains
      r.Sky_experiments.Exp_parallel.r_jobs
      r.Sky_experiments.Exp_parallel.r_seq_seconds
      r.Sky_experiments.Exp_parallel.r_par_seconds
      r.Sky_experiments.Exp_parallel.r_speedup
      r.Sky_experiments.Exp_parallel.r_gate;
    if not (Sky_experiments.Exp_parallel.ok r) then begin
      Printf.eprintf
        "parallel: acceptance failed (all_identical=%b gate=%s)\n"
        (Sky_experiments.Exp_parallel.all_identical r)
        r.Sky_experiments.Exp_parallel.r_gate;
      exit 1
    end
  in
  Cmd.v (Cmd.info "parallel" ~doc)
    Term.(const run $ seed $ json $ backend_arg)

let md_cmd =
  let doc = "Render every experiment as a markdown report (for EXPERIMENTS.md)." in
  let run () =
    List.iter
      (fun e ->
        print_string
          (Sky_harness.Tbl.to_markdown (e.Sky_experiments.Registry.run ())))
      Sky_experiments.Registry.all
  in
  Cmd.v (Cmd.info "md" ~doc) Term.(const run $ const ())

let () =
  let doc = "SkyBridge (EuroSys'19) reproduction benchmarks" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "skybench" ~doc ~version:"1.0")
          [
            list_cmd; run_cmd; md_cmd; trace_cmd; audit_cmd; chaos_cmd;
            web_cmd; mesh_cmd; perf_cmd; overload_cmd; matrix_cmd;
            parallel_cmd;
          ]))
