(** Zipfian request distribution — YCSB's default key-popularity model
    (the Gray et al. method used by YCSB's ZipfianGenerator, with the
    standard constant θ = 0.99). *)

type t

val create : ?theta:float -> items:int -> Sky_sim.Rng.t -> t
val next : t -> int
(** Next item index in [\[0, items)]; low indices are the hot ones. *)
