(** x86-64 general-purpose registers with their hardware encodings. *)

type t =
  | Rax
  | Rcx
  | Rdx
  | Rbx
  | Rsp
  | Rbp
  | Rsi
  | Rdi
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let encoding = function
  | Rax -> 0
  | Rcx -> 1
  | Rdx -> 2
  | Rbx -> 3
  | Rsp -> 4
  | Rbp -> 5
  | Rsi -> 6
  | Rdi -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let of_encoding = function
  | 0 -> Rax
  | 1 -> Rcx
  | 2 -> Rdx
  | 3 -> Rbx
  | 4 -> Rsp
  | 5 -> Rbp
  | 6 -> Rsi
  | 7 -> Rdi
  | 8 -> R8
  | 9 -> R9
  | 10 -> R10
  | 11 -> R11
  | 12 -> R12
  | 13 -> R13
  | 14 -> R14
  | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "Reg.of_encoding: %d" n)

let name = function
  | Rax -> "rax"
  | Rcx -> "rcx"
  | Rdx -> "rdx"
  | Rbx -> "rbx"
  | Rsp -> "rsp"
  | Rbp -> "rbp"
  | Rsi -> "rsi"
  | Rdi -> "rdi"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

let all =
  [ Rax; Rcx; Rdx; Rbx; Rsp; Rbp; Rsi; Rdi; R8; R9; R10; R11; R12; R13; R14; R15 ]

let pp fmt r = Format.pp_print_string fmt (name r)
let equal (a : t) b = a = b
