(** Benchmark artifacts: every machine-readable result a CI run should
    archive is written as [BENCH_<name>.json] in the working directory,
    so the workflow can glob one pattern and benchmark trajectories can
    be compared across commits. *)

let path_of name = Printf.sprintf "BENCH_%s.json" name

let write ~name contents =
  let path = path_of name in
  let oc = open_out path in
  output_string oc contents;
  if contents = "" || contents.[String.length contents - 1] <> '\n' then
    output_char oc '\n';
  close_out oc;
  path
