lib/sim/machine.mli: Cache Cpu Sky_mem
