(** Benchmark artifacts: every machine-readable result a CI run should
    archive is written as [BENCH_<name>.json] in the working directory,
    so the workflow can glob one pattern and benchmark trajectories can
    be compared across commits. *)

let path_of name = Printf.sprintf "BENCH_%s.json" name

(* [host_seconds] records the host wall-clock cost of producing the
   result next to the simulated numbers, so benchmark trajectories track
   both the modelled machine and the simulator itself. [host_json]
   carries further host-side measurements (parallel speedup, domain
   counts) as a ready-made JSON value. Both wrap rather than edit
   [contents]: the simulated result stays byte-deterministic under
   "result" while host-dependent numbers live alongside it. *)
let write ~name ?host_seconds ?host_json contents =
  let path = path_of name in
  let contents =
    match (host_seconds, host_json) with
    | None, None -> contents
    | _ ->
      let trimmed = String.trim contents in
      let fields =
        (match host_seconds with
        | Some s -> [ Printf.sprintf "\"host_seconds\":%.3f" s ]
        | None -> [])
        @ (match host_json with
          | Some j -> [ Printf.sprintf "\"host\":%s" j ]
          | None -> [])
        @ [
            Printf.sprintf "\"result\":%s"
              (if trimmed = "" then "null" else trimmed);
          ]
      in
      Printf.sprintf "{%s}" (String.concat "," fields)
  in
  let oc = open_out path in
  output_string oc contents;
  if contents = "" || contents.[String.length contents - 1] <> '\n' then
    output_char oc '\n';
  close_out oc;
  path
