(** skyhttpd: an N-worker HTTP-style server over the simulated NIC.

    Routing is a multi-receiver {!Sky_mesh.Endpoint}: RSS still spreads
    packets across NIC rings, but a ring is just transport — the worker
    that owns queue [i] (worker [i], pinned to core [i]) demultiplexes
    its socket events and {e pushes} each request onto the shared
    endpoint, and any worker may serve it (own receive queue first, then
    work-stealing from the longest peer queue). Workers beyond the
    number of NIC queues own no ring at all and live purely off the
    endpoint — true fan-out of one server URI across more cores than RX
    queues. Idle workers block on the endpoint's notification (or their
    ring's RX IRQ) and are woken by badge signal.

    Each request is served by calling the KV and FS {e backends} through
    the worker's bindings — mediated SkyBridge calls on the fast path
    (URI-addressed through the mesh in the composed scenarios), each
    baseline kernel's synchronous IPC on the slowpath variant.

    {b Admission control} (the overload story): an {!admission} config
    bounds the endpoint's per-receiver queues — a demultiplexed request
    that finds its target queue full is {e shed} with a typed 503 before
    it costs anything but the parse of its envelope. Requests may carry
    a TTL ([Http.with_ttl]); the ring owner stamps an absolute deadline
    at demux time, a request that expires while queued is shed on pop,
    and the live deadline is exported ({!current_deadline}) so the
    worker→backend hop can propagate the remaining budget as a call
    timeout. When [a_batch_max > 1] a worker drains up to that many
    requests per quantum and carries all their KV operations to the
    backend in {e one} SkyBridge crossing ({!binding.kv_batch}),
    amortizing the per-call overhead exactly when queues are deep —
    replies stay in pop order, so per-connection ordering is preserved.

    Worker scheduling is wired through {!Sky_kernels.Scheduler} (Benno):
    the per-core run queue holds the worker thread exactly while it has
    work, so IRQ wakeups and idle blocking charge the real O(1) queue
    operations.

    Fault site ["server.httpd"]: a [Crash] kills the worker mid-request
    (the §7 story applied to the application tier). The in-flight
    requests are parked, the worker's server bindings are revoked, and
    the supervisor restarts it after {!restart_cycles}, re-binding
    (PR 3 machinery) and replaying the parked requests — no request is
    ever lost. [Hang] burns cycles past the watchdog budget, surfacing
    as a tail-latency spike.

    A binding may raise {!Denied} (its capability was revoked — the
    mesh's least-privilege path): the worker survives, counts the
    denial, and hands the request to the next receiver on the endpoint.
    Each request carries a bitmask of the workers that denied it; once
    {e every} worker has bounced it, the request terminates with a typed
    403 instead of cycling between receivers forever. *)

open Sky_sim
open Sky_ukernel
module Fault = Sky_faults.Fault
module Scheduler = Sky_kernels.Scheduler
module Notification = Sky_kernels.Notification
module Endpoint = Sky_mesh.Endpoint

let worker_text = 6 * 1024 (* request-handling instruction working set *)
let parse_base = 300
let parse_per_byte = 2
let respond_base = 150
let respond_per_byte = 1
let cache_hit_base = 250 (* static-file cache: hash lookup + header copy *)
let hang_cycles = 60_000
let restart_cycles = 25_000 (* exec + dynamic linking of a fresh worker *)

let denial_backoff_cycles = 4_000
(* After a capability denial the worker stays off the endpoint for this
   long: without it, the revoked worker re-steals the request it just
   bounced faster than the privileged peer can wake, and a single fs://
   request ping-pongs dozens of times before being served. *)

(* One KV operation / reply of a batched worker→backend crossing. *)
type kv_op = Op_put of string * bytes | Op_get of string
type kv_reply = R_stored of bool | R_value of bytes option

(* Typed backend bindings, one set per worker. The closures capture the
   worker's process and transport (SkyBridge direct calls — possibly
   URI-routed through the mesh — or baseline kernel IPC);
   [revoke]/[rebind] tear down and re-establish the worker's server
   bindings around a crash. [kv_batch], when present, carries a whole
   list of KV operations in one backend crossing. *)
type binding = {
  kv_put : core:int -> key:string -> value:bytes -> bool;
  kv_get : core:int -> key:string -> bytes option;
  fs_read : core:int -> name:string -> bytes option;
  kv_batch : (core:int -> kv_op list -> kv_reply list) option;
  revoke : core:int -> unit;
  rebind : core:int -> unit;
}

(* A demultiplexed request riding the endpoint: the deadline is absolute
   (stamped by the ring owner), the denied mask accumulates the workers
   that bounced it so denial-by-all terminates instead of looping. *)
type req = {
  rq_conn : Socket.conn;
  rq_payload : bytes;
  rq_deadline : int option;
  mutable rq_denied : int;
}

type admission = {
  a_queue_cap : int option;
      (** per-receiver endpoint queue bound; [None] = unbounded *)
  a_default_ttl : int option;
      (** deadline (cycles from demux) stamped on TTL-less requests *)
  a_batch_max : int;  (** max requests drained per worker quantum *)
}

let no_admission = { a_queue_cap = None; a_default_ttl = None; a_batch_max = 1 }

type worker_state =
  | Running
  | Dead of int  (** crashed; restart completes at this cycle *)

type worker = {
  w_core : int;
  w_proc : Proc.t;
  w_sched : Scheduler.t;  (** this core's run queue *)
  w_thread : Scheduler.thread;
  w_binding : binding;
  w_text_pa : int;
  w_cache : (string, bytes) Hashtbl.t;
      (** static-file cache: xv6fs is hit only on cold misses (the
          big-locked FS would otherwise convoy every worker, §8.1);
          wiped when the worker crashes, like any process-local state *)
  mutable w_state : worker_state;
  mutable w_inflight : req list;
      (** requests being served when the worker crashed — replayed *)
  mutable w_served : int;
  mutable w_restarts : int;
  mutable w_hangs : int;
  mutable w_denied : int;  (** requests bounced to a peer on Denied *)
  mutable w_backoff : int;
      (** no endpoint pops before this cycle (set on a denial) *)
  mutable w_fs_cold : int;  (** cache misses served through the FS *)
}

type t = {
  kernel : Kernel.t;
  nic : Nic.t;
  socks : Socket.t;
  workers : worker array;
  ep : req Endpoint.t;
      (** the routing mechanism: every parsed request goes through here *)
  file_cache : bool;
  admission : admission;
  deadlines : int option array;
      (** per-core live deadline while a request is dispatched — what the
          binding's deadline-propagation wrapper reads *)
  wire_hint : unit -> int option;
      (** next known future wire event beyond the rings (an open-loop
          generator's next arrival) — lets idle workers sleep to it *)
  queue_done : queue:int -> bool;
  mutable served : int;
  mutable bad_requests : int;
  mutable shed_queue : int;
  mutable shed_expired : int;
  mutable unservable : int;
  mutable batches : int;
  mutable batched_ops : int;
}

let fault_site = "server.httpd"

exception Worker_crashed
exception Denied

exception Expired
(** Raised by a deadline-aware binding when the request's remaining
    budget is gone: the request is shed with a 503, not an error. *)

let create ?(preload = []) ?(file_cache = true) ?(admission = no_admission)
    ?(wire_hint = fun () -> None) kernel nic ~workers:procs ~queue_done =
  let n = Array.length procs in
  if n = 0 then invalid_arg "Httpd.create: no workers";
  if Nic.n_queues nic > n then
    invalid_arg "Httpd.create: fewer workers than queues";
  if n > Machine.n_cores kernel.Kernel.machine then
    invalid_arg "Httpd.create: more workers than cores";
  if admission.a_batch_max < 1 then invalid_arg "Httpd.create: batch_max";
  let socks = Socket.create kernel nic in
  let ep =
    Endpoint.create ?capacity:admission.a_queue_cap kernel
      ~name:"httpd-endpoint" ~receivers:n
  in
  let workers =
    Array.init n (fun i ->
        let proc, binding = procs.(i) in
        let text_pa =
          Sky_mem.Frame_alloc.alloc_frames (Kernel.alloc kernel)
            ~count:((worker_text + 4095) / 4096)
        in
        let sched = Scheduler.create Scheduler.Benno in
        let thread = Scheduler.spawn_thread sched ~tid:i in
        if i < Nic.n_queues nic then Nic.pin nic ~queue:i ~core:i;
        {
          w_core = i;
          w_proc = proc;
          w_sched = sched;
          w_thread = thread;
          w_binding = binding;
          w_text_pa = text_pa;
          w_cache = Hashtbl.create 16;
          w_state = Running;
          w_inflight = [];
          w_served = 0;
          w_restarts = 0;
          w_hangs = 0;
          w_denied = 0;
          w_backoff = 0;
          w_fs_cold = 0;
        })
  in
  let t =
    {
      kernel;
      nic;
      socks;
      workers;
      ep;
      file_cache;
      admission;
      deadlines = Array.make n None;
      wire_hint;
      queue_done;
      served = 0;
      bad_requests = 0;
      shed_queue = 0;
      shed_expired = 0;
      unservable = 0;
      batches = 0;
      batched_ops = 0;
    }
  in
  (* Boot: each worker preloads the static assets named in [preload]
     through its backend binding (the whole worker fleet reading through
     the big-locked FS is exactly the convoy the cache exists to avoid —
     paid once here, at startup), then blocks in recv before any traffic
     arrives, so the first deliveries take the cross-core IRQ path. *)
  Array.iter
    (fun w ->
      let cpu = Kernel.cpu kernel ~core:w.w_core in
      Kernel.context_switch kernel ~core:w.w_core w.w_proc;
      if file_cache then
        List.iter
          (fun name ->
            match w.w_binding.fs_read ~core:w.w_core ~name with
            | Some data ->
              w.w_fs_cold <- w.w_fs_cold + 1;
              Hashtbl.replace w.w_cache name data
            | None -> ())
          preload;
      Scheduler.block w.w_sched cpu w.w_thread;
      if w.w_core < Nic.n_queues nic then
        ignore
          (Notification.wait_blocking ~polls:0
             (Nic.irq nic ~queue:w.w_core)
             ~core:w.w_core)
      else
        ignore (Notification.wait_blocking ~polls:0 (Endpoint.note ep) ~core:w.w_core))
    workers;
  t

let served t = t.served
let bad_requests t = t.bad_requests
let restarts t = Array.fold_left (fun a w -> a + w.w_restarts) 0 t.workers
let hangs t = Array.fold_left (fun a w -> a + w.w_hangs) 0 t.workers
let denials t = Array.fold_left (fun a w -> a + w.w_denied) 0 t.workers
let fs_cold t = Array.fold_left (fun a w -> a + w.w_fs_cold) 0 t.workers
let worker_served t i = t.workers.(i).w_served
let steals t = Endpoint.steals t.ep
let endpoint t = t.ep
let shed_queue t = t.shed_queue
let shed_expired t = t.shed_expired
let shed t = t.shed_queue + t.shed_expired
let unservable t = t.unservable
let batches t = t.batches
let batched_ops t = t.batched_ops
let current_deadline t ~core = t.deadlines.(core)

(* ---- request handling ---- *)

let check_fault t w =
  match Fault.check ~core:w.w_core fault_site with
  | Some Fault.Crash -> raise Worker_crashed
  | Some Fault.Hang ->
    w.w_hangs <- w.w_hangs + 1;
    Kernel.user_compute t.kernel ~core:w.w_core ~cycles:hang_cycles
  | Some (Fault.Drop | Fault.Revoke | Fault.Ept_fault) | None -> ()

let respond t ~core conn response =
  let cpu = Kernel.cpu t.kernel ~core in
  let wire = Http.serialize_response response in
  Cpu.charge cpu (respond_base + (respond_per_byte * Bytes.length wire));
  Socket.reply t.socks conn ~core wire

(* Shed one request with the typed 503: the load-shedding outcome the
   client's retry policy treats as backpressure, never as data loss. *)
let shed_reply t ~core ~counter r =
  (match counter with
  | `Queue -> t.shed_queue <- t.shed_queue + 1
  | `Expired -> t.shed_expired <- t.shed_expired + 1);
  Sky_trace.Trace.instant ~core ~cat:"web"
    (match counter with
    | `Queue -> "web.shed-queue"
    | `Expired -> "web.shed-expired");
  respond t ~core r.rq_conn Http.service_unavailable

(* A binding raised [Denied]: record this worker in the request's mask.
   If every worker has now denied it, no receiver can ever serve it —
   terminate with a typed 403 (the counted-error outcome) instead of
   bouncing forever; otherwise hand it to the next receiver and back
   off the endpoint so the privileged peer drains it first. *)
let deny t w r =
  let core = w.w_core in
  let n = Array.length t.workers in
  w.w_denied <- w.w_denied + 1;
  r.rq_denied <- r.rq_denied lor (1 lsl core);
  if r.rq_denied = (1 lsl n) - 1 then begin
    t.unservable <- t.unservable + 1;
    Sky_trace.Trace.instant ~core ~cat:"web" "web.unservable";
    respond t ~core r.rq_conn Http.forbidden
  end
  else begin
    Sky_trace.Trace.instant ~core ~cat:"web" "web.denied-bounce";
    Endpoint.push t.ep ~core ~receiver:((core + 1) mod n) r;
    w.w_backoff <-
      Cpu.cycles (Kernel.cpu t.kernel ~core) + denial_backoff_cycles
  end

let dispatch t w kv_replies pr =
  let core = w.w_core in
  let misaligned () = invalid_arg "Httpd: batch reply misaligned" in
  match pr with
  | Http.Kv_put (key, value) ->
    let stored =
      match kv_replies with
      | Some q -> (
        match Queue.pop q with R_stored ok -> ok | R_value _ -> misaligned ())
      | None -> w.w_binding.kv_put ~core ~key ~value
    in
    if stored then Http.ok (Bytes.of_string "stored") else Http.server_error
  | Http.Kv_get key -> (
    let value =
      match kv_replies with
      | Some q -> (
        match Queue.pop q with R_value v -> v | R_stored _ -> misaligned ())
      | None -> w.w_binding.kv_get ~core ~key
    in
    match value with Some v -> Http.ok v | None -> Http.not_found)
  | Http.Fs_get name -> (
    match if t.file_cache then Hashtbl.find_opt w.w_cache name else None with
    | Some data ->
      Kernel.user_compute t.kernel ~core
        ~cycles:(cache_hit_base + (Bytes.length data / 16));
      Http.ok data
    | None -> (
      match w.w_binding.fs_read ~core ~name with
      | Some data ->
        w.w_fs_cold <- w.w_fs_cold + 1;
        if t.file_cache then Hashtbl.replace w.w_cache name data;
        Http.ok data
      | None -> Http.not_found))

(* Serve a drained batch (singleton in the un-batched default). The
   crash point is before any reply, so a [Worker_crashed] escaping here
   parks the whole batch; everything after replies request by request,
   in pop order — per-connection response ordering is preserved. *)
let handle_batch t w reqs =
  let core = w.w_core in
  let cpu = Kernel.cpu t.kernel ~core in
  Sky_trace.Trace.span ~core ~cat:"web" "web.serve" (fun () ->
      (* The crash point: mid-request, after the packet left the ring. *)
      check_fault t w;
      Memsys.touch_range_state_only cpu Memsys.Insn ~pa:w.w_text_pa ~len:worker_text;
      let parsed =
        List.map
          (fun r ->
            Cpu.charge cpu (parse_base + (parse_per_byte * Bytes.length r.rq_payload));
            match Http.parse_request r.rq_payload with
            | pr -> (r, Some pr)
            | exception Http.Bad_request _ ->
              t.bad_requests <- t.bad_requests + 1;
              (r, None))
          reqs
      in
      (* Batched worker→backend hop: every KV operation of the batch in
         one crossing, under the tightest member deadline. A [Denied] or
         [Expired] from the batched call falls back to the individual
         path so each request gets its own terminal outcome. *)
      let kv_replies =
        match w.w_binding.kv_batch with
        | Some batch when List.length parsed > 1 -> (
          let ops =
            List.filter_map
              (fun (_, pr) ->
                match pr with
                | Some (Http.Kv_put (key, value)) -> Some (Op_put (key, value))
                | Some (Http.Kv_get key) -> Some (Op_get key)
                | Some (Http.Fs_get _) | None -> None)
              parsed
          in
          if List.length ops < 2 then None
          else begin
            t.deadlines.(core) <-
              List.fold_left
                (fun acc (r, _) ->
                  match (r.rq_deadline, acc) with
                  | None, a -> a
                  | Some d, None -> Some d
                  | Some d, Some a -> Some (Int.min d a))
                None parsed;
            match batch ~core ops with
            | replies ->
              t.deadlines.(core) <- None;
              t.batches <- t.batches + 1;
              t.batched_ops <- t.batched_ops + List.length ops;
              let q = Queue.create () in
              List.iter (fun rep -> Queue.add rep q) replies;
              Some q
            | exception (Denied | Expired) ->
              t.deadlines.(core) <- None;
              None
          end)
        | _ -> None
      in
      List.iter
        (fun (r, pr) ->
          t.deadlines.(core) <- r.rq_deadline;
          match
            match pr with
            | None -> Http.bad_request
            | Some pr -> dispatch t w kv_replies pr
          with
          | response ->
            t.deadlines.(core) <- None;
            respond t ~core r.rq_conn response;
            w.w_served <- w.w_served + 1;
            t.served <- t.served + 1
          | exception Denied ->
            t.deadlines.(core) <- None;
            deny t w r
          | exception Expired ->
            t.deadlines.(core) <- None;
            shed_reply t ~core ~counter:`Expired r)
        parsed)

(* Crash bookkeeping: park the in-flight requests, revoke the worker's
   bindings (they are re-established on restart — the PR 3 revoke/rebind
   machinery), and schedule the restart. *)
let crash t w ~inflight =
  let core = w.w_core in
  let cpu = Kernel.cpu t.kernel ~core in
  Sky_trace.Trace.instant ~core ~cat:"web" "web.worker-crash";
  w.w_inflight <- inflight;
  w.w_binding.revoke ~core;
  w.w_state <- Dead (Cpu.cycles cpu + restart_cycles);
  Scheduler.block w.w_sched cpu w.w_thread

let restart t w =
  let core = w.w_core in
  let cpu = Kernel.cpu t.kernel ~core in
  Sky_trace.Trace.instant ~core ~cat:"web" "web.worker-restart";
  (* Fresh worker image: cold caches for its text, fresh bindings, and
     an empty file cache — the restarted worker re-reads from the FS. *)
  Hashtbl.reset w.w_cache;
  Kernel.context_switch t.kernel ~core w.w_proc;
  Kernel.user_compute t.kernel ~core ~cycles:restart_cycles;
  w.w_binding.rebind ~core;
  w.w_state <- Running;
  w.w_restarts <- w.w_restarts + 1;
  Scheduler.wake w.w_sched cpu w.w_thread

(* The run is finished only globally: every NIC queue exhausted, the
   endpoint drained, nobody mid-restart with parked requests. Until
   then an idle worker must keep stepping — stolen work can appear on
   the endpoint at any time. *)
let finished t =
  let nq = Nic.n_queues t.nic in
  let rec queues_done q = q >= nq || (t.queue_done ~queue:q && queues_done (q + 1)) in
  queues_done 0
  && Endpoint.pending t.ep = 0
  && Array.for_all
       (fun w ->
         (match w.w_state with Running -> true | Dead _ -> false)
         && w.w_inflight = [])
       t.workers

(* Earliest packet timestamp still sitting in any RX ring, and the ring
   it sits in (= the core that owns it: only the owner can drain it). A
   blocked worker uses it as its next-event time: with cross-core
   serving, a fast peer's replies can strand a ring owner's clock far
   above the laggard pack, and plain [Idle] only leapfrogs idle cores
   one cycle at a time — the run loop's idle guard trips long before the
   pack creeps up to the owner. *)
let next_wire_event t =
  let best = ref None in
  for q = 0 to Nic.n_queues t.nic - 1 do
    match Nic.next_deliver_at t.nic ~queue:q with
    | Some at -> (
      match !best with
      | Some (_, b) when b <= at -> ()
      | _ -> best := Some (q, at))
    | None -> ()
  done;
  !best

(* Serve a batch of popped (or replayed) requests: expired members are
   shed up front, a crash parks whatever was not yet replied. *)
let serve t w reqs =
  let cpu = Kernel.cpu t.kernel ~core:w.w_core in
  let now = Cpu.cycles cpu in
  let live =
    List.filter
      (fun r ->
        match r.rq_deadline with
        | Some d when now > d ->
          shed_reply t ~core:w.w_core ~counter:`Expired r;
          false
        | _ -> true)
      reqs
  in
  if live = [] then Machine.Progress
  else
    match handle_batch t w live with
    | () -> Machine.Progress
    | exception Worker_crashed ->
      crash t w ~inflight:live;
      Machine.Progress

(* ---- the per-core event loop, one quantum per call ---- *)

let step t ~core =
  let w = t.workers.(core) in
  let cpu = Kernel.cpu t.kernel ~core in
  match w.w_state with
  | Dead at ->
    if Cpu.cycles cpu >= at then begin
      restart t w;
      Machine.Progress
    end
    else Machine.Idle_until at
  | Running -> (
    (* Replay requests parked by a crash before touching any queue. *)
    match w.w_inflight with
    | _ :: _ as parked ->
      w.w_inflight <- [];
      serve t w parked
    | [] ->
      let has_queue = core < Nic.n_queues t.nic in
      if not (Scheduler.runnable w.w_thread) then begin
        (* Blocked in recv: wake on a pending RX IRQ (advancing to its
           delivery time) or on endpoint work pushed by a peer. Signals
           coalesce, so a peer may have consumed the wake word for an
           item that landed in our queue — the pending check catches
           that without a notification. *)
        let irq_wake =
          has_queue
          && (Notification.wait_blocking (Nic.irq t.nic ~queue:core) ~core
              <> None
             || (* Level check: with cross-core serving a peer's reply can
                   land in our ring while the edge word is already consumed;
                   only the owner can drain it, so wake on occupancy too. *)
             Nic.rx_level t.nic ~queue:core > 0)
        in
        let ep_wake =
          (not irq_wake)
          && (Notification.wait_blocking ~polls:0 (Endpoint.note t.ep) ~core
              <> None
             || Endpoint.pending t.ep > 0)
        in
        if irq_wake || ep_wake then begin
          Scheduler.wake w.w_sched cpu w.w_thread;
          Machine.Progress
        end
        else if finished t then Machine.Done
        else (
          (* Ring events first; otherwise the generator's hint (an
             open-loop pump's next arrival), so a fully drained fleet
             sleeps to the next offered request instead of leapfrogging
             one cycle at a time into the interleave deadlock guard. *)
          match next_wire_event t with
          | Some (q, at) ->
            let now = Cpu.cycles cpu in
            if at > now then Machine.Idle_until at
            else
              (* A packet already due on our clock sits in another
                 core's ring (a due head in our own ring wakes us via
                 the level check above). Only its owner can drain it; if
                 the owner's clock is ahead of us, park just past it in
                 one hop — the owner gets stepped the moment the rest of
                 the pack passes it, instead of everyone creeping up one
                 leapfrog at a time into the idle guard. *)
              let owner = Cpu.cycles (Kernel.cpu t.kernel ~core:q) in
              if owner >= now then Machine.Idle_until (owner + 1)
              else Machine.Idle
          | None -> (
            match t.wire_hint () with
            | Some at when at > Cpu.cycles cpu -> Machine.Idle_until at
            | Some _ | None -> Machine.Idle))
      end
      else begin
        (* Route first, serve second: RSS only places packets in rings;
           the endpoint decides which worker serves. *)
        match
          if has_queue then Socket.service t.socks ~queue:core ~core else None
        with
        | Some (Socket.Accepted _) -> Machine.Progress
        | Some (Socket.Request (conn, payload)) ->
          (* Admission: stamp the deadline from the carried TTL (or the
             configured default) and bounce off a full target queue with
             a 503 before the request costs anything downstream. *)
          let ttl, body = Http.split_ttl payload in
          let deadline =
            match (ttl, t.admission.a_default_ttl) with
            | Some n, _ | None, Some n -> Some (Cpu.cycles cpu + n)
            | None, None -> None
          in
          let r =
            { rq_conn = conn; rq_payload = body; rq_deadline = deadline; rq_denied = 0 }
          in
          if Endpoint.try_push t.ep ~core r then Machine.Progress
          else begin
            shed_reply t ~core ~counter:`Queue r;
            Machine.Progress
          end
        | None -> (
          if Cpu.cycles cpu < w.w_backoff then
            (* Just bounced a denied request: stay off the endpoint so
               the privileged peer drains it instead of us re-stealing. *)
            Machine.Idle_until w.w_backoff
          else
            match Endpoint.pop t.ep ~core ~recv:core with
            | Some r ->
              (* Drain up to [a_batch_max] requests for one quantum —
                 deep queues amortize the backend crossing, an empty
                 queue degenerates to the classic one-at-a-time loop. *)
              let rec more acc n =
                if n >= t.admission.a_batch_max then List.rev acc
                else
                  match Endpoint.pop t.ep ~core ~recv:core with
                  | Some r2 -> more (r2 :: acc) (n + 1)
                  | None -> List.rev acc
              in
              serve t w (r :: more [] 1)
            | None ->
              (* Ring and endpoint drained: back to recv. *)
              Scheduler.block w.w_sched cpu w.w_thread;
              Machine.Progress)
      end)

(* Resumable form of [run], for the quantum scheduler: the run-loop
   state persists across [advance] calls so the server can be driven one
   bounded slice of virtual time at a time. *)
type session = Machine.run

let start t =
  let cores = Array.to_list (Array.init (Array.length t.workers) (fun i -> i)) in
  Machine.start_run t.kernel.Kernel.machine ~cores

let advance t s ~until =
  Machine.run_until t.kernel.Kernel.machine s
    ~step:(fun ~core -> step t ~core)
    ~until

let run t =
  let s = start t in
  match advance t s ~until:max_int with
  | `Done -> ()
  | `Paused -> assert false (* no core's clock can reach max_int *)
