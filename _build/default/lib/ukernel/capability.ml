type rights = { send : bool; recv : bool; grant : bool }

let all_rights = { send = true; recv = true; grant = true }
let send_only = { send = true; recv = false; grant = false }

let intersect a b =
  { send = a.send && b.send; recv = a.recv && b.recv; grant = a.grant && b.grant }

let covers held need =
  ((not need.send) || held.send)
  && ((not need.recv) || held.recv)
  && ((not need.grant) || held.grant)

type t = {
  owner : int;
  target : int;
  rights : rights;
  badge : int;
  mutable children : t list;
  mutable live : bool;
}

type registry = { by_owner : (int, t list ref) Hashtbl.t }

exception Cap_denied of { pid : int; target : int; reason : string }

let create_registry () = { by_owner = Hashtbl.create 16 }

let attach r cap =
  match Hashtbl.find_opt r.by_owner cap.owner with
  | Some l -> l := cap :: !l
  | None -> Hashtbl.replace r.by_owner cap.owner (ref [ cap ])

let mint r ~owner ~target ~rights ~badge =
  let cap = { owner; target; rights; badge; children = []; live = true } in
  attach r cap;
  cap

let derive r parent ~new_owner ?badge rights =
  if not parent.live then
    raise
      (Cap_denied
         { pid = new_owner; target = parent.target; reason = "parent revoked" });
  if not parent.rights.grant then
    raise
      (Cap_denied
         { pid = new_owner; target = parent.target; reason = "parent lacks grant" });
  let cap =
    {
      owner = new_owner;
      target = parent.target;
      rights = intersect parent.rights rights;
      badge = Option.value ~default:parent.badge badge;
      children = [];
      live = true;
    }
  in
  parent.children <- cap :: parent.children;
  attach r cap;
  cap

let rec kill cap =
  if cap.live then begin
    cap.live <- false;
    List.iter kill cap.children
  end

let revoke _r cap = List.iter kill cap.children
let delete _r cap = kill cap
let is_live _r cap = cap.live
let owner cap = cap.owner
let target cap = cap.target
let badge cap = cap.badge
let rights cap = cap.rights

let check r ~pid ~target ~need =
  match Hashtbl.find_opt r.by_owner pid with
  | None -> false
  | Some l ->
    List.exists (fun c -> c.live && c.target = target && covers c.rights need) !l

let caps_of r ~pid =
  match Hashtbl.find_opt r.by_owner pid with
  | None -> []
  | Some l -> List.filter (fun c -> c.live) !l
