lib/sim/cpu.mli: Cache Pmu Tlb
