(** Kernel configuration knobs used across experiments. *)

type variant =
  | Sel4
  | Fiasco
  | Zircon
  | Linux
      (** A monolithic-kernel personality — the paper's first future-work
          direction (SS10): "extend the design of SkyBridge to monolithic
          kernels like Linux to boost applications that communicate
          through Linux IPC facilities". Its "IPC" models a UNIX domain
          socket round trip: no fastpath, double copy, scheduler on both
          sides. *)

let variant_name = function
  | Sel4 -> "seL4"
  | Fiasco -> "Fiasco.OC"
  | Zircon -> "Zircon"
  | Linux -> "Linux"

type t = {
  variant : variant;
  kpti : bool;
      (** Meltdown mitigation: separate kernel/user page tables; doubles
          the address-space switches on the IPC path (§2.1.1). The
          paper's headline numbers are measured with KPTI off. *)
  pcid : bool;
      (** Tag TLB entries with the process-context ID instead of flushing
          on CR3 writes. Off by default, matching the TLB pollution the
          paper measures in Table 1. *)
}

let default variant = { variant; kpti = false; pcid = false }
