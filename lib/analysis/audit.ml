(** Orchestration of the three auditors.

    The inputs are plain data (bytes, roots, VMCSes) rather than
    Subkernel values so the library stays below [sky_core] in the
    dependency order; {!Sky_core.Subkernel.audit} assembles the inputs
    from a live machine and the CLI ([skybench audit]) formats the
    result. *)

type input = {
  images : Gadget.image list;
  machine : Ept_check.input option;
  trampolines : (string * bytes) list;
      (** trampoline page bytes as read from the shared physical frame *)
}

let run inp =
  let image_vs = List.concat_map Gadget.audit inp.images in
  let tramp_vs =
    List.concat_map (fun (image, code) -> Tramp_check.check ~image code)
      inp.trampolines
  in
  let machine_vs =
    match inp.machine with None -> [] | Some m -> Ept_check.check m
  in
  Report.sort (image_vs @ tramp_vs @ machine_vs)

let ok vs = vs = []
