lib/mmu/pte.ml: Int64 Printf
