lib/mem/frame_alloc.mli: Phys_mem
