(* The paper's motivating workload (Figure 1): a client talks to a
   key-value store through an encryption server. This example builds the
   same pipeline over every interconnect and prints the latency ladder of
   Figures 2 and 8 for one payload size.

   Run with:  dune exec examples/kv_pipeline.exe [len]  *)

open Sky_ukernel
open Sky_kvstore

let make config =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:128 () in
  let kernel = Kernel.create machine in
  match config with
  | Pipeline.Skybridge ->
    (* URI-addressed through the service mesh: the servers register as
       [enc://] and [kv://] with the name service and the client calls
       by URI under capability-granted bindings. *)
    let sb = Sky_core.Subkernel.init kernel in
    let mesh = Sky_mesh.Mesh.create sb in
    Pipeline.create ~sb ~mesh kernel config
  | _ -> Pipeline.create kernel config

let () =
  let len =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 64
  in
  Printf.printf
    "KV pipeline (client -> RC4 encryption server -> KV store), %d-byte \
     keys and values\n\
     50%% insert / 50%% query, average latency per operation:\n\n"
    len;
  List.iter
    (fun config ->
      let p = make config in
      ignore (Pipeline.run p ~core:0 ~ops:64 ~len) (* warm up *);
      let cycles = Pipeline.run p ~core:0 ~ops:256 ~len in
      Printf.printf "  %-14s %7d cycles  (%.2f us at 4 GHz)\n"
        (Pipeline.config_name config)
        cycles
        (float_of_int cycles /. 4000.0))
    [ Pipeline.Baseline; Pipeline.Delay; Pipeline.Skybridge; Pipeline.Ipc_local;
      Pipeline.Ipc_cross ];
  print_newline ();
  print_endline
    "Reading the ladder: Delay - Baseline is the *direct* cost of IPC\n\
     (two 986-cycle roundtrips); IPC - Delay is the *indirect* cost\n\
     (cache/TLB pollution, SS2.1.2); SkyBridge eliminates most of both."
