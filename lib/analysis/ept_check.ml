(** EPT and guest page-table invariant checker (§4.1, §4.3, §9).

    Invariants, by name:

    - [ept.wx] — no {e remapped} 4 KiB EPT leaf (one where GPA ≠ HPA,
      i.e. a mapping SkyBridge installed on top of the identity base
      EPT) is simultaneously writable and executable. Identity leaves
      (GPA = HPA) inherit the base EPT's RWX identity map of guest RAM
      — the guest page table gates those — so they are exempt unless
      they are the trampoline page, which [ept.trampoline] covers.
    - [ept.trampoline] — in every process/binding EPT the trampoline
      frame translates, is executable, and is {e not} writable: no
      process may forge the only legal VMFUNC-bearing page (§4.4).
    - [ept.eptp-slot] — every non-zero EPTP-list slot is 4 KiB aligned,
      inside physical memory, and the root of an EPT the Rootkernel
      knows about (base, process or binding EPT).
    - [pt.wx] — no guest page-table leaf is writable and executable
      (NX clear): W^X over whole address spaces (§9).
    - [pt.trampoline] — the trampoline VA of every registered process
      maps the shared trampoline frame read-execute, not writable. *)

open Sky_mmu

type input = {
  mem : Sky_mem.Phys_mem.t;
  phys_bytes : int;
  epts : (string * int) list;  (** (name, root PA); base EPT excluded *)
  known_roots : int list;  (** every legitimate EPTP value, base included *)
  eptp_lists : (string * Vmcs.t) list;
  page_tables : (string * int) list;  (** (process name, CR3) *)
  trampoline_gpa : int;  (** the shared trampoline frame (identity GPA) *)
  trampoline_va : int;
}

let check_ept_leaves inp name root vs =
  Ept.iter_leaves ~mem:inp.mem ~root_pa:root (fun ~gpa ~hpa ~level ~flags ->
      if
        level = 0 && gpa <> hpa && flags.Pte.writable && flags.Pte.user
        (* EPT bit 2 = execute *)
      then
        vs :=
          Report.v ~addr:gpa ~invariant:"ept.wx" ~image:name
            (Printf.sprintf "remapped leaf gpa %#x -> hpa %#x is writable+executable"
               gpa hpa)
          :: !vs)

let check_trampoline_ept inp name root vs =
  let fail detail =
    vs :=
      Report.v ~addr:inp.trampoline_gpa ~invariant:"ept.trampoline" ~image:name
        detail
      :: !vs
  in
  match Ept.walk_flags ~mem:inp.mem ~root_pa:root ~gpa:inp.trampoline_gpa with
  | Error (Ept.Ept_not_present _) -> fail "trampoline gpa does not translate"
  | Ok (_, flags) ->
    if flags.Pte.huge then
      fail "trampoline gpa still covered by a huge identity mapping (writable)"
    else begin
      if flags.Pte.writable then fail "trampoline page writable in EPT";
      if not flags.Pte.user then fail "trampoline page not executable in EPT"
    end

let check_eptp_list inp name vmcs vs =
  for index = 0 to Vmcs.eptp_list_size - 1 do
    let eptp = Vmcs.eptp_at vmcs ~index in
    if eptp <> 0 then begin
      let bad detail =
        vs :=
          Report.v ~addr:eptp ~invariant:"ept.eptp-slot" ~image:name
            (Printf.sprintf "slot %d: %s" index detail)
          :: !vs
      in
      if eptp land 0xfff <> 0 then bad "EPTP not 4 KiB aligned"
      else if eptp < 0 || eptp >= inp.phys_bytes then
        bad "EPTP outside physical memory"
      else if not (List.mem eptp inp.known_roots) then
        bad "EPTP is not a known EPT root"
    end
  done

let check_page_table inp name cr3 vs =
  let tramp = ref false in
  Page_table.iter_leaves ~mem:inp.mem ~root_pa:cr3 (fun ~va ~pa ~flags ->
      if flags.Pte.writable && not flags.Pte.nx then
        vs :=
          Report.v ~addr:va ~invariant:"pt.wx" ~image:name
            (Printf.sprintf "va %#x -> pa %#x writable+executable" va pa)
          :: !vs;
      if va = inp.trampoline_va then begin
        tramp := true;
        let bad detail =
          vs :=
            Report.v ~addr:va ~invariant:"pt.trampoline" ~image:name detail
            :: !vs
        in
        if pa <> inp.trampoline_gpa then
          bad
            (Printf.sprintf "trampoline va maps %#x, not the shared frame %#x"
               pa inp.trampoline_gpa);
        if flags.Pte.writable then bad "trampoline va writable";
        if flags.Pte.nx then bad "trampoline va not executable"
      end);
  if not !tramp then
    vs :=
      Report.v ~addr:inp.trampoline_va ~invariant:"pt.trampoline" ~image:name
        "trampoline va not mapped"
      :: !vs

let check inp =
  let vs = ref [] in
  List.iter (fun (name, root) ->
      check_ept_leaves inp name root vs;
      check_trampoline_ept inp name root vs)
    inp.epts;
  List.iter (fun (name, vmcs) -> check_eptp_list inp name vmcs vs) inp.eptp_lists;
  List.iter (fun (name, cr3) -> check_page_table inp name cr3 vs) inp.page_tables;
  Report.sort !vs
