(** Deterministic pseudo-random numbers (splitmix64).

    All randomness in the simulator — calling keys, workload key choice,
    the synthetic binary corpus — flows through explicitly seeded
    generators, so every experiment is reproducible run to run and the
    harness never consults [Random.self_init]. *)

type t

val create : seed:int -> t

val next : t -> int
(** Uniform non-negative 62-bit integer. *)

val next_int64 : t -> int64
(** Uniform 64-bit value (calling keys, §4.4). *)

val int : t -> int -> int
(** [int t bound] in [\[0, bound)]. Raises [Invalid_argument] when
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val bytes : t -> int -> bytes
(** Random payloads for KV/YCSB values. *)

val split : t -> t
(** Independent child generator. *)
