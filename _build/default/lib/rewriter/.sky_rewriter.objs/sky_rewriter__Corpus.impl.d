lib/rewriter/corpus.ml: Array Buffer Bytes Encode Hashtbl Insn Int64 List Reg Scan Sky_isa Sky_sim
