(** One shard's worth of host-global simulator state, bundled.

    The simulator keeps a handful of process-wide singletons — the
    tracer's ring buffers, the fault engine's arms, the Accel epoch, the
    hot-line table — because a single simulated machine is a single
    coherent world. Running several machines at once (parallel shards on
    OCaml domains, `--jobs` replicas) needs each world to carry its own
    copies, or shards would read each other's clocks and fire each
    other's faults. A [t] is that bundle; {!enter} installs it for the
    duration of a callback via each module's domain-local scoping hook,
    so everything the callback builds or runs sees only its own world. *)

type t = {
  sc_trace : Sky_trace.Trace.ctx;
  sc_fault : Sky_faults.Fault.engine;
  sc_accel : Accel.scope;
  sc_hot : Memsys.Hotline.table;
}

let fresh ?(seed = 0) () =
  {
    sc_trace = Sky_trace.Trace.fresh_ctx ();
    sc_fault = Sky_faults.Fault.fresh_engine ~seed ();
    sc_accel = Accel.fresh_scope ();
    sc_hot = Memsys.Hotline.fresh_table ();
  }

let enter t f =
  Sky_trace.Trace.with_ctx t.sc_trace (fun () ->
      Sky_faults.Fault.with_engine t.sc_fault (fun () ->
          Accel.with_scope t.sc_accel (fun () ->
              Memsys.Hotline.with_table t.sc_hot f)))
