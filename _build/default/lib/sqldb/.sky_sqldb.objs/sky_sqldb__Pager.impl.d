lib/sqldb/pager.ml: Array Bytes Hashtbl Sky_blockdev Sky_mem Sky_sim Sky_ukernel Sky_xv6fs
