exception Out_of_memory

type t = {
  mem : Phys_mem.t;
  used : Bytes.t; (* one byte per frame: 0 free, 1 allocated, 2 reserved *)
  mutable in_use : int;
  mutable search_hint : int;
}

let create mem =
  {
    mem;
    used = Bytes.make (Phys_mem.frames mem) '\000';
    in_use = 0;
    search_hint = 0;
  }

let nframes t = Phys_mem.frames t.mem
let state t f = Char.code (Bytes.get t.used f)

let set_state t f s =
  let old = state t f in
  Bytes.set t.used f (Char.chr s);
  if old = 0 && s <> 0 then t.in_use <- t.in_use + 1
  else if old <> 0 && s = 0 then t.in_use <- t.in_use - 1

let reserve t ~first_frame ~count =
  if first_frame < 0 || count < 0 || first_frame + count > nframes t then
    invalid_arg "Frame_alloc.reserve: range out of bounds";
  for f = first_frame to first_frame + count - 1 do
    if state t f <> 0 then
      invalid_arg (Printf.sprintf "Frame_alloc.reserve: frame %d in use" f)
  done;
  for f = first_frame to first_frame + count - 1 do
    set_state t f 2
  done

let find_run t count =
  let n = nframes t in
  let rec scan start from run =
    if from >= n then raise Out_of_memory
    else if state t from = 0 then
      if run + 1 = count then start else scan start (from + 1) (run + 1)
    else scan (from + 1) (from + 1) 0
  in
  (* Search from the hint, then wrap to the beginning. *)
  try scan t.search_hint t.search_hint 0 with Out_of_memory -> scan 0 0 0

let alloc_frames t ~count =
  if count <= 0 then invalid_arg "Frame_alloc.alloc_frames: count <= 0";
  let start = find_run t count in
  for f = start to start + count - 1 do
    set_state t f 1;
    Phys_mem.zero_frame t.mem f
  done;
  t.search_hint <- start + count;
  Phys_mem.addr_of_frame start

let alloc_frame t = alloc_frames t ~count:1

let free_frames t ~pa ~count =
  let first = Phys_mem.frame_of_addr pa in
  for f = first to first + count - 1 do
    match state t f with
    | 1 -> set_state t f 0
    | 0 -> invalid_arg (Printf.sprintf "Frame_alloc: double free of frame %d" f)
    | _ -> invalid_arg (Printf.sprintf "Frame_alloc: freeing reserved frame %d" f)
  done;
  if first < t.search_hint then t.search_hint <- first

let free_frame t pa = free_frames t ~pa ~count:1
let in_use t = t.in_use
let available t = nframes t - t.in_use
