(** Virtual address-space layout of a simulated process.

    Mirrors a conventional x86-64 layout: the second page (0x1000) is
    deliberately left unmapped for the rewrite page (§5.1) until
    SkyBridge claims it, code sits at 0x400000, the heap above it, stacks
    high, and the SkyBridge trampoline/shared pages in a reserved window
    below the stacks. *)

let rewrite_page_va = 0x1000
let code_va = 0x400000
let heap_va = 0x1000_0000
let trampoline_va = 0x7000_0000
let skybridge_stack_va = 0x7100_0000
let skybridge_buffer_va = 0x7200_0000
let identity_page_va = 0x7300_0000
let stack_top_va = 0x7ff0_0000

(** Guest-physical address of the per-process identity page (§4.2): the
    same GPA in every EPT, mapped to a different frame per process. Must
    lie outside the identity-mapped physical range, so EPT clones remap
    it explicitly. *)
let identity_gpa = 0x4000_0000
