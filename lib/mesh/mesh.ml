(** The capability-routed service mesh (ROADMAP item 5): a name-service
    process mapping URI schemes to Subkernel server ids — resolve /
    register / unregister themselves carried over SkyBridge — plus
    refcounted service capabilities layered on {!Sky_ukernel.Capability}
    and {!Sky_core.Subkernel.revoke_binding}.

    Authority model: the name service owns one root capability per
    registered server id. A {!grant} derives a child capability to the
    client for the target {e and every server in its dependency closure}
    (a client bound to [fs://] is transitively bound to the block device
    the FS calls, §4.2 — the grant must cover what the binding covers, or
    the audit would flag the dep binding as unauthorized). Revocation is
    refcounted through the capability registry itself: a binding is torn
    down ([revoke_binding ~orphan:false] — permanent, recovery must not
    re-establish it) only when {e no} live capability of that client
    still covers the server id.

    Resolution caching: per-core caches keyed by scheme, invalidated by
    a global epoch that bumps on every (re-)registration {e and} on
    every Subkernel binding change (via {!Sky_core.Subkernel.on_binding_change})
    — so a crash + rebind during a resolved call can never leave a stale
    sid reachable by URI. *)

open Sky_sim
open Sky_ukernel
module Subkernel = Sky_core.Subkernel
module Retry = Sky_core.Retry

let cache_hit_cycles = 60 (* per-core hash probe *)
let cap_check_cycles = 40 (* capability-space walk *)
let ns_lookup_cycles = 180 (* name-service table op, inside the handler *)

let fault_site = "server.nameserv"

type error =
  [ `Unresolved of string | `Denied of string | `Failed of Subkernel.call_error ]

exception Unknown_service of string
exception Denied of { uri : string; pid : int }

type grant = {
  g_uri : string;
  g_client : Proc.t;
  g_sid : int;  (** primary server id at grant time *)
  g_closure : int list;  (** dependency closure the grant covers *)
  g_caps : (int * Capability.t) list;  (** server id -> derived capability *)
  mutable g_live : bool;
}

type t = {
  sb : Subkernel.t;
  kernel : Kernel.t;
  caps : Capability.registry;
  table : (string, int) Hashtbl.t;  (** authoritative scheme -> sid *)
  roots : (int, Capability.t) Hashtbl.t;  (** per-sid root capability *)
  mutable epoch : int;
  cache : (string, int * int) Hashtbl.t array;  (** per-core scheme -> (sid, epoch) *)
  ns_proc : Proc.t;
  mutable ns_sid : int;
  admin : Proc.t;  (** the mesh's own privileged client for wire ops *)
  mutable grants : grant list;  (** newest first; order never observed *)
  suspended : (int, int list) Hashtbl.t;  (** pid -> sids parked by suspend *)
  rstats : Retry.stats;
  rbudget : Retry.budget option;  (** retry budget for routed calls *)
  mutable resolves : int;  (** wire round trips to the name service *)
  mutable cache_hits : int;
  mutable denials : int;
  mutable registrations : int;
}

(* ---- name-service wire protocol ---- *)

(* Fresh per reply: handlers hand the bytes to transport code that may
   outlive the call, so a shared mutable constant would be a (latent)
   cross-call, cross-domain alias. *)
let ok_reply () = Bytes.make 1 '\000'

let enc_resolve scheme =
  let b = Bytes.create (1 + String.length scheme) in
  Bytes.set b 0 'R';
  Bytes.blit_string scheme 0 b 1 (String.length scheme);
  b

let enc_register ~sid scheme =
  let b = Bytes.create (5 + String.length scheme) in
  Bytes.set b 0 'G';
  Bytes.set_int32_le b 1 (Int32.of_int sid);
  Bytes.blit_string scheme 0 b 5 (String.length scheme);
  b

let enc_unregister scheme =
  let b = Bytes.create (1 + String.length scheme) in
  Bytes.set b 0 'U';
  Bytes.blit_string scheme 0 b 1 (String.length scheme);
  b

let invalidate t = t.epoch <- t.epoch + 1

let ns_handler t : Sky_kernels.Ipc.handler =
 fun ~core msg ->
  Kernel.user_compute t.kernel ~core ~cycles:ns_lookup_cycles;
  if Bytes.length msg = 0 then invalid_arg "nameserv: empty request";
  match Bytes.get msg 0 with
  | 'R' ->
    let scheme = Bytes.sub_string msg 1 (Bytes.length msg - 1) in
    let sid =
      match Hashtbl.find_opt t.table scheme with Some s -> s | None -> -1
    in
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int sid);
    b
  | 'G' ->
    let sid = Int32.to_int (Bytes.get_int32_le msg 1) in
    let scheme = Bytes.sub_string msg 5 (Bytes.length msg - 5) in
    Hashtbl.replace t.table scheme sid;
    t.registrations <- t.registrations + 1;
    invalidate t;
    Sky_trace.Trace.instant ~core ~cat:"mesh" "mesh.register";
    ok_reply ()
  | 'U' ->
    let scheme = Bytes.sub_string msg 1 (Bytes.length msg - 1) in
    Hashtbl.remove t.table scheme;
    invalidate t;
    ok_reply ()
  | c -> invalid_arg (Printf.sprintf "nameserv: opcode %d" (Char.code c))

(* ---- capability plumbing ---- *)

let root_of t sid =
  match Hashtbl.find_opt t.roots sid with
  | Some c when Capability.is_live t.caps c -> c
  | _ ->
    let c =
      Capability.mint t.caps ~owner:t.ns_proc.Proc.pid ~target:sid
        ~rights:Capability.all_rights ~badge:sid
    in
    Hashtbl.replace t.roots sid c;
    c

let covered t ~pid ~sid =
  Capability.check t.caps ~pid ~target:sid ~need:Capability.send_only

(* Tear down every mesh-managed binding no longer covered by a live
   capability, and retire grants whose primary capability died. The
   refcount semantics live here: as long as ANY live grant of the same
   client still covers a server id, the binding survives. *)
let sweep t ~core ~reason =
  List.iter
    (fun g ->
      if g.g_live && not (Capability.is_live t.caps (List.assoc g.g_sid g.g_caps))
      then g.g_live <- false)
    t.grants;
  let proc_of pid =
    List.find_opt (fun g -> g.g_client.Proc.pid = pid) t.grants
    |> Option.map (fun g -> g.g_client)
  in
  let managed pid sid =
    List.exists
      (fun g -> g.g_client.Proc.pid = pid && List.mem sid g.g_closure)
      t.grants
  in
  List.iter
    (fun (pid, sid) ->
      if sid <> t.ns_sid && managed pid sid && not (covered t ~pid ~sid) then
        match proc_of pid with
        | Some p ->
          Subkernel.revoke_binding ~orphan:false t.sb ~core p ~server_id:sid
            ~reason
        | None -> ())
    (Subkernel.bindings t.sb)

let connect t client =
  let pid = client.Proc.pid in
  if not (covered t ~pid ~sid:t.ns_sid) then begin
    ignore
      (Capability.derive t.caps (root_of t t.ns_sid) ~new_owner:pid
         ~badge:t.ns_sid Capability.send_only);
    Subkernel.register_client_to_server t.sb client ~server_id:t.ns_sid
  end

(* ---- construction ---- *)

let create ?(seed = 0) ?retry_budget sb =
  ignore seed;
  let kernel = Subkernel.kernel sb in
  let cores = Machine.n_cores kernel.Kernel.machine in
  let ns_proc = Kernel.spawn kernel ~name:"nameserv" in
  let admin = Kernel.spawn kernel ~name:"meshd" in
  let t =
    {
      sb;
      kernel;
      caps = Capability.create_registry ();
      table = Hashtbl.create 8;
      roots = Hashtbl.create 8;
      epoch = 0;
      cache = Array.init cores (fun _ -> Hashtbl.create 8);
      ns_proc;
      ns_sid = -1;
      admin;
      grants = [];
      suspended = Hashtbl.create 4;
      rstats = Retry.create_stats ();
      rbudget = retry_budget;
      resolves = 0;
      cache_hits = 0;
      denials = 0;
      registrations = 0;
    }
  in
  t.ns_sid <-
    Subkernel.register_server sb ns_proc ~connection_count:cores (ns_handler t);
  ignore (root_of t t.ns_sid);
  (* Satellite fix: ANY binding change — revoke on crash, rebind,
     restart_server re-establishment — invalidates every per-core
     resolution cache, so recovery can never race a stale URI entry. *)
  Subkernel.on_binding_change sb (fun ~server_id:_ -> invalidate t);
  connect t admin;
  t

(* ---- wire operations ---- *)

let register t ~core ~uri ~server_id =
  let scheme = Uri.service uri in
  ignore
    (Retry.call ~stats:t.rstats t.sb ~core ~client:t.admin ~server_id:t.ns_sid
       (enc_register ~sid:server_id scheme));
  ignore (root_of t server_id)

let unregister t ~core ~uri =
  let scheme = Uri.service uri in
  ignore
    (Retry.call ~stats:t.rstats t.sb ~core ~client:t.admin ~server_id:t.ns_sid
       (enc_unregister scheme))

let resolve t ~core ~client uri =
  let scheme = Uri.service uri in
  let cache = t.cache.(core) in
  match Hashtbl.find_opt cache scheme with
  | Some (sid, e) when e = t.epoch ->
    t.cache_hits <- t.cache_hits + 1;
    Cpu.charge (Kernel.cpu t.kernel ~core) cache_hit_cycles;
    if sid < 0 then None else Some sid
  | _ ->
    t.resolves <- t.resolves + 1;
    let reply =
      Retry.call ~stats:t.rstats t.sb ~core ~client ~server_id:t.ns_sid
        (enc_resolve scheme)
    in
    let sid = Int32.to_int (Bytes.get_int32_le reply 0) in
    Hashtbl.replace cache scheme (sid, t.epoch);
    if sid < 0 then None else Some sid

let server_of_uri t uri = Hashtbl.find_opt t.table (Uri.service uri)

(* ---- grant / revoke ---- *)

let grant t ~core ?(rights = Capability.send_only) ~client uri =
  connect t client;
  let pid = client.Proc.pid in
  match resolve t ~core ~client:t.admin uri with
  | None -> raise (Unknown_service uri)
  | Some sid ->
    let closure = Subkernel.server_dep_closure t.sb ~server_id:sid in
    let caps =
      List.map
        (fun s ->
          let r = if s = sid then rights else Capability.send_only in
          (s, Capability.derive t.caps (root_of t s) ~new_owner:pid ~badge:s r))
        closure
    in
    if not (List.mem (pid, sid) (Subkernel.bindings t.sb)) then
      Subkernel.register_client_to_server t.sb client ~server_id:sid;
    let g = { g_uri = uri; g_client = client; g_sid = sid; g_closure = closure;
              g_caps = caps; g_live = true }
    in
    t.grants <- g :: t.grants;
    Sky_trace.Trace.instant ~core ~cat:"mesh" "mesh.grant";
    g

let grant_uri g = g.g_uri
let grant_pid g = g.g_client.Proc.pid
let grant_live g = g.g_live
let grants t = List.rev t.grants

let revoke_grant t ~core g =
  if g.g_live then begin
    List.iter (fun (_, c) -> Capability.delete t.caps c) g.g_caps;
    g.g_live <- false;
    Sky_trace.Trace.instant ~core ~cat:"mesh" "mesh.revoke-grant";
    sweep t ~core ~reason:("mesh: grant on " ^ g.g_uri ^ " revoked")
  end

let revoke_service t ~core uri =
  match server_of_uri t uri with
  | None -> 0
  | Some sid ->
    let was_live = List.filter (fun g -> g.g_live) t.grants in
    (* seL4 semantics: revoking the root destroys every capability ever
       derived from it, across all clients, transitively. *)
    Capability.revoke t.caps (root_of t sid);
    Sky_trace.Trace.instant ~core ~cat:"mesh" "mesh.revoke-service";
    sweep t ~core ~reason:("mesh: service " ^ uri ^ " revoked");
    List.length (List.filter (fun g -> not g.g_live) was_live)

(* ---- crash bracket (the worker restart path) ---- *)

let suspend_client t ~core client =
  let pid = client.Proc.pid in
  let sids =
    List.filter_map
      (fun (p, s) -> if p = pid then Some s else None)
      (Subkernel.bindings t.sb)
  in
  List.iter
    (fun s ->
      Subkernel.revoke_binding t.sb ~core client ~server_id:s
        ~reason:"mesh: client suspended (crash)")
    sids;
  Hashtbl.replace t.suspended pid sids

let resume_client t client =
  let pid = client.Proc.pid in
  (match Hashtbl.find_opt t.suspended pid with
  | None -> ()
  | Some sids ->
    List.iter
      (fun s ->
        (* A capability revoked while the client was down stays revoked:
           the binding is simply not re-established. *)
        if s = t.ns_sid || covered t ~pid ~sid:s then
          Subkernel.rebind t.sb client ~server_id:s)
      sids);
  Hashtbl.remove t.suspended pid

(* ---- the routed call ---- *)

let call t ~core ~client ?on_crash ?timeout uri msg =
  let pid = client.Proc.pid in
  match resolve t ~core ~client uri with
  | None -> Error (`Unresolved uri)
  | Some sid -> (
    Cpu.charge (Kernel.cpu t.kernel ~core) cap_check_cycles;
    if not (covered t ~pid ~sid) then begin
      t.denials <- t.denials + 1;
      Sky_trace.Trace.instant ~core ~cat:"mesh" "mesh.denied";
      Error (`Denied uri)
    end
    else
      match
        Retry.call ~stats:t.rstats ?budget:t.rbudget ?timeout ?on_crash t.sb
          ~core ~client ~server_id:sid msg
      with
      | reply -> Ok reply
      | exception Retry.Gave_up e -> Error (`Failed e))

let call_exn t ~core ~client ?on_crash ?timeout uri msg =
  match call t ~core ~client ?on_crash ?timeout uri msg with
  | Ok reply -> reply
  | Error (`Unresolved u) -> raise (Unknown_service u)
  | Error (`Denied u) -> raise (Denied { uri = u; pid = client.Proc.pid })
  | Error (`Failed e) -> raise (Retry.Gave_up e)

(* ---- audit ---- *)

let mesh_input t =
  let resolutions =
    Hashtbl.fold (fun s sid acc -> (s ^ "://", sid) :: acc) t.table []
    |> List.sort compare
  in
  {
    Sky_analysis.Mesh_check.bindings = Subkernel.bindings t.sb;
    covered = (fun ~pid ~server_id -> covered t ~pid ~sid:server_id);
    resolutions;
    dead = Subkernel.dead_servers t.sb;
  }

(* The capability closure as (client pid, server pid) pairs — Isoflow's
   [flow.closure] ground truth. Stricter than the Subkernel's own
   binding-derived default: a binding forged around the mesh (no
   covering capability) is a cross-domain view with no grant. *)
let granted t =
  let sids = Subkernel.server_ids t.sb in
  let pids =
    List.sort_uniq compare (List.map fst (Subkernel.bindings t.sb))
  in
  List.concat_map
    (fun pid ->
      List.filter_map
        (fun (sid, spid) ->
          if covered t ~pid ~sid then Some (pid, spid) else None)
        sids)
    pids

let isoflow_input t = Subkernel.isoflow_input ~granted:(granted t) t.sb

(* The mesh's own audit: the mesh authority invariants plus Isoflow with
   the capability closure as ground truth (the machine-shape passes are
   the Subkernel's audit; {!audit_passes} runs everything at once). *)
let audit t =
  Sky_analysis.Audit.run
    (Sky_analysis.Audit.input ~mesh:(mesh_input t)
       ~isoflow:(isoflow_input t) ())

(* The full registry over the live machine: every Subkernel pass with
   the mesh invariants and the capability-closure ground truth. *)
let audit_passes t =
  Sky_analysis.Audit.run_passes
    {
      (Subkernel.audit_input ~granted:(granted t) t.sb) with
      Sky_analysis.Audit.mesh = Some (mesh_input t);
    }

(* ---- stats ---- *)

let epoch t = t.epoch
let resolves t = t.resolves
let cache_hits t = t.cache_hits
let denials t = t.denials
let registrations t = t.registrations
let retry_stats t = t.rstats
let registry t = t.caps
let name_server_id t = t.ns_sid
