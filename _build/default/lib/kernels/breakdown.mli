(** Per-category cycle accounting for an IPC path — the stacked-bar
    categories of Figure 7: VMFUNC, SYSCALL/SYSRET, context switch, IPI,
    message copy, schedule, others. *)

type t = {
  mutable vmfunc : int;
  mutable syscall : int;
  mutable ctx : int;
  mutable ipi : int;
  mutable copy : int;
  mutable sched : int;
  mutable other : int;
}

val create : unit -> t
val total : t -> int

val add : t -> t -> unit
(** Accumulate [b] into [a]. *)

val scale : t -> int -> t
(** Per-roundtrip average over [n] calls. *)

val pp : Format.formatter -> t -> unit
