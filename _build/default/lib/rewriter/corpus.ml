(** Synthetic binary corpus for the Table 6 experiment.

    The paper scans SPEC CPU 2006, PARSEC 3.0, several servers, vmlinux,
    2,934 kernel modules and 2,605 other Linux programs, finding exactly
    one inadvertent VMFUNC (in GIMP 2.8, inside the immediate of a longer
    call instruction). We do not have those proprietary binaries, so we
    generate deterministic instruction streams with realistic operand
    distributions (small immediates and displacements dominate), of the
    same program counts and — scaled by [scale] — the same code sizes,
    and plant the GIMP call. The scanner exercised is the real one. *)

open Sky_isa

type group = {
  name : string;
  apps : int;
  avg_code_kb : int;  (** paper's average code size, in KiB *)
  plant_gimp : bool;
}

(* Table 6 of the paper. *)
let table6_groups =
  [
    { name = "SPECCPU 2006 (31 Apps)"; apps = 31; avg_code_kb = 424; plant_gimp = false };
    { name = "PARSEC 3.0 (45 Apps)"; apps = 45; avg_code_kb = 842; plant_gimp = false };
    { name = "Nginx v1.6.2"; apps = 1; avg_code_kb = 979; plant_gimp = false };
    { name = "Apache v2.4.10"; apps = 1; avg_code_kb = 666; plant_gimp = false };
    { name = "Memcached v1.4.21"; apps = 1; avg_code_kb = 121; plant_gimp = false };
    { name = "Redis v2.8.17"; apps = 1; avg_code_kb = 729; plant_gimp = false };
    { name = "Vmlinux v4.14.29"; apps = 1; avg_code_kb = 10498; plant_gimp = false };
    { name = "Linux Kernel Modules v4.14.29 (2,934 Modules)"; apps = 2934;
      avg_code_kb = 15; plant_gimp = false };
    { name = "Other Apps (2,605 Apps)"; apps = 2605; avg_code_kb = 216;
      plant_gimp = true };
  ]

let regs =
  [| Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rbx; Reg.Rsi; Reg.Rdi; Reg.R8; Reg.R9;
     Reg.R10; Reg.R11; Reg.R12; Reg.R14; Reg.R15 |]

let random_reg rng = regs.(Sky_sim.Rng.int rng (Array.length regs))

(* Realistic immediate/displacement distribution: overwhelmingly small
   constants and modest structure offsets, occasionally page-sized. *)
let random_const rng =
  match Sky_sim.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> Sky_sim.Rng.int rng 16
  | 4 | 5 | 6 -> Sky_sim.Rng.int rng 256
  | 7 | 8 -> Sky_sim.Rng.int rng 4096
  | _ -> Sky_sim.Rng.int rng 0x100000

let random_mem rng =
  let base = Some (random_reg rng) in
  let index =
    if Sky_sim.Rng.int rng 4 = 0 then
      Some (random_reg rng, [| 1; 2; 4; 8 |].(Sky_sim.Rng.int rng 4))
    else None
  in
  { Insn.base; index; disp = random_const rng }

let random_insn rng =
  match Sky_sim.Rng.int rng 28 with
  | 0 | 1 -> Insn.Push (random_reg rng)
  | 2 | 3 -> Insn.Pop (random_reg rng)
  | 4 | 5 -> Insn.Mov_rr (random_reg rng, random_reg rng)
  | 6 | 7 -> Insn.Mov_ri (random_reg rng, Int64.of_int (random_const rng))
  | 8 | 9 -> Insn.Mov_load (random_reg rng, random_mem rng)
  | 10 -> Insn.Mov_store (random_mem rng, random_reg rng)
  | 11 -> Insn.Add_rr (random_reg rng, random_reg rng)
  | 12 -> Insn.Add_ri (random_reg rng, random_const rng)
  | 13 -> Insn.Sub_ri (random_reg rng, random_const rng)
  | 14 -> Insn.Xor_rr (random_reg rng, random_reg rng)
  | 15 -> Insn.Lea (random_reg rng, random_mem rng)
  | 16 -> Insn.Add_rm (random_reg rng, random_mem rng)
  | 17 -> Insn.Call_rel (random_const rng)
  | 18 -> Insn.Ret
  | 19 -> Insn.Nop
  | 20 -> Insn.And_ri (random_reg rng, random_const rng)
  | 21 -> Insn.Or_rr (random_reg rng, random_reg rng)
  | 22 -> Insn.Cmp_ri (random_reg rng, random_const rng)
  | 23 -> Insn.Test_rr (random_reg rng, random_reg rng)
  | 24 -> Insn.Shl_ri (random_reg rng, Sky_sim.Rng.int rng 32)
  | 25 -> Insn.Inc (random_reg rng)
  | 26 ->
    Insn.Jcc
      ( [| Insn.E; Insn.Ne; Insn.L; Insn.G |].(Sky_sim.Rng.int rng 4),
        random_const rng )
  | _ -> Insn.Dec (random_reg rng)

(* The planted GIMP occurrence: a call whose 32-bit offset immediate
   contains 0F 01 D4 — "the inadvertent VMFUNC is contained in the
   immediate region of a longer call instruction" (§6.7). *)
let gimp_call = Insn.Call_rel 0x00D4010F

let generate_program rng ~size_bytes ~plant =
  let buf = Buffer.create size_bytes in
  let plant_at = if plant then size_bytes / 2 else max_int in
  let planted = ref false in
  while Buffer.length buf < size_bytes do
    if (not !planted) && Buffer.length buf >= plant_at then begin
      Buffer.add_string buf (Encode.encode gimp_call).Encode.bytes;
      planted := true
    end
    else
      Buffer.add_string buf (Encode.encode (random_insn rng)).Encode.bytes
  done;
  Buffer.to_bytes buf

type report_row = {
  group : string;
  apps : int;
  avg_code_kb : int;
  scanned_bytes : int;
  vmfunc_count : int;
}

(* [scale] divides every program's code size (the program *count* is kept)
   so the experiment stays laptop-sized; scale=1 reproduces the paper's
   full volume. *)
let run ?(scale = 64) ?(seed = 0x5B) () =
  List.map
    (fun g ->
      let rng = Sky_sim.Rng.create ~seed:(seed lxor Hashtbl.hash g.name) in
      let size = max 256 (g.avg_code_kb * 1024 / scale) in
      let scanned = ref 0 in
      let count = ref 0 in
      for app = 0 to g.apps - 1 do
        let plant = g.plant_gimp && app = g.apps / 2 in
        let prog = generate_program rng ~size_bytes:size ~plant in
        scanned := !scanned + Bytes.length prog;
        count := !count + Scan.count_pattern prog
      done;
      {
        group = g.name;
        apps = g.apps;
        avg_code_kb = g.avg_code_kb;
        scanned_bytes = !scanned;
        vmfunc_count = !count;
      })
    table6_groups
