(** A cross-core spinlock in virtual time.

    Cores are independent cycle counters; a lock serializes them by
    advancing the acquiring core to the lock's release time. [contended]
    counts acquisitions that had to wait, [wait_cycles] the total time
    spent spinning — the xv6fs big-lock experiments (Figures 9–11) read
    these. *)

type t = {
  name : string;
  mutable available_at : int;
  mutable acquisitions : int;
  mutable contended : int;
  mutable wait_cycles : int;
  mutable holder : int;  (** core id, -1 when free *)
  recent : int array;  (** ring of recent acquirer cores (convoy size) *)
  mutable recent_idx : int;
}

let recent_window = 16

let create name =
  {
    name;
    available_at = 0;
    acquisitions = 0;
    contended = 0;
    wait_cycles = 0;
    holder = -1;
    recent = Array.make recent_window (-1);
    recent_idx = 0;
  }

(* How many distinct cores are currently fighting over this lock. *)
let convoy_size t =
  let seen = ref [] in
  Array.iter
    (fun c -> if c >= 0 && not (List.mem c !seen) then seen := c :: !seen)
    t.recent;
  List.length !seen

(* Costs of a lock handoff between cores. The contended figure is large
   and deliberate: on a microkernel a blocked waiter sleeps and is woken
   through the kernel — two IPC round trips, an IPI, two scheduler
   passes — and the new holder then drags the protected working set
   across the cache hierarchy. Under a convoy this is what makes the
   paper's Figures 9-11 collapse as threads are added (e.g. seL4-mt
   falls from 9,660 to 1,489 ops/s between 1 and 8 threads). *)
let contended_handoff_cycles = 60_000
let migration_cycles = 2000

let acquire t cpu =
  let now = Sky_sim.Cpu.cycles cpu in
  t.acquisitions <- t.acquisitions + 1;
  let core = Sky_sim.Cpu.id cpu in
  let migrated = t.holder >= 0 && t.holder <> core in
  t.recent.(t.recent_idx) <- core;
  t.recent_idx <- (t.recent_idx + 1) mod recent_window;
  if t.available_at > now then begin
    t.contended <- t.contended + 1;
    t.wait_cycles <- t.wait_cycles + (t.available_at - now);
    Sky_sim.Cpu.advance_to cpu t.available_at;
    (* Convoy: the handoff (sleep/wake through the kernel + working-set
       migration) repeats per queued waiter stampeding on the release. *)
    Sky_sim.Cpu.charge cpu
      (if migrated then contended_handoff_cycles * max 1 (convoy_size t - 1)
       else 60)
  end
  else
    Sky_sim.Cpu.charge cpu (if migrated then migration_cycles else 10);
  t.holder <- core

let release t cpu =
  t.available_at <- Sky_sim.Cpu.cycles cpu;
  t.holder <- Sky_sim.Cpu.id cpu

let with_lock t cpu f =
  acquire t cpu;
  Fun.protect ~finally:(fun () -> release t cpu) f
