(** Translation look-aside buffer.

    Set-associative, LRU, keyed by virtual page number and an address-space
    identifier. The ASID is an opaque tag composed by the MMU layer from
    (VPID, PCID, EPTP index) so that, as on real hardware with VPID+PCID
    enabled, neither CR3 writes nor VMFUNC EPTP switches need flush the
    TLB — stale entries are simply never matched. *)

type t

type entry = {
  ppn : int;  (** physical page number the VPN maps to *)
  page_shift : int;  (** 12 for 4 KiB, 21 for 2 MiB, 30 for 1 GiB *)
  writable : bool;
  user : bool;
}

val create : name:string -> entries:int -> ways:int -> t

val name : t -> string
val capacity : t -> int

val lookup : t -> asid:int -> vpn:int -> entry option
(** Hit updates LRU state and the hit counter; miss counts a miss. *)

val insert : t -> asid:int -> vpn:int -> entry -> unit

val flush_all : t -> unit

val flush_asid : t -> asid:int -> unit
(** Invalidate every entry tagged [asid] (INVPCID-style). *)

val flush_page : t -> asid:int -> vpn:int -> unit
(** INVLPG-style single-entry invalidation. *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
