(* Tests for the deterministic fault-plan engine (Sky_faults) and the
   §7 crash-safe call recovery built on it: typed call errors, watchdog
   forced returns with register restore, revocation + rebinding,
   slowpath degradation, the security-event ring, trace integration,
   and the qcheck crash sweeps. *)

open Sky_sim
open Sky_ukernel
open Sky_core
module Fault = Sky_faults.Fault

(* Every test leaves the global engine disabled, whatever happens. *)
let with_faults f = Fun.protect ~finally:Fault.disable f

(* ------------------------------------------------------------------ *)
(* Engine semantics (no machine: hand-cranked clock)                   *)
(* ------------------------------------------------------------------ *)

let test_triggers () =
  with_faults @@ fun () ->
  Fault.reset ~seed:1 ();
  Fault.set_clock (fun _ -> 0);
  Fault.arm ~site:"a" ~kind:Fault.Crash (Fault.At_hit 3);
  Alcotest.(check bool) "hit 1" true (Fault.check ~core:0 "a" = None);
  Alcotest.(check bool) "hit 2" true (Fault.check ~core:0 "a" = None);
  Alcotest.(check bool) "hit 3 fires" true
    (Fault.check ~core:0 "a" = Some Fault.Crash);
  Alcotest.(check bool) "budget spent" true (Fault.check ~core:0 "a" = None);
  Fault.arm ~budget:2 ~site:"b" ~kind:Fault.Hang (Fault.Every 2);
  let fires =
    List.init 8 (fun _ -> Fault.check ~core:0 "b" <> None)
    |> List.filter Fun.id |> List.length
  in
  Alcotest.(check int) "every-2 with budget 2" 2 fires

let test_at_cycle () =
  with_faults @@ fun () ->
  let t = ref 0 in
  Fault.reset ~seed:1 ();
  Fault.set_clock (fun _ -> !t);
  Fault.arm ~site:"c" ~kind:Fault.Drop (Fault.At_cycle 100);
  t := 50;
  Alcotest.(check bool) "before cycle" true (Fault.check ~core:0 "c" = None);
  t := 120;
  Alcotest.(check bool) "past cycle" true
    (Fault.check ~core:0 "c" = Some Fault.Drop);
  Alcotest.(check (list (pair string int))) "fired log cycle" [ ("c", 1) ]
    (Fault.fired_counts ());
  match Fault.fired () with
  | [ ("c", Fault.Drop, 120) ] -> ()
  | _ -> Alcotest.fail "fired log should carry the firing cycle"

let test_scope_gating () =
  with_faults @@ fun () ->
  Fault.reset ~seed:1 ();
  Fault.set_clock (fun _ -> 0);
  Fault.arm ~site:"s" ~kind:Fault.Crash (Fault.At_hit 1);
  (* Out-of-scope scoped checks neither fire nor consume hits. *)
  Alcotest.(check bool) "out of scope" true
    (Fault.check ~scoped:true ~core:0 "s" = None);
  Alcotest.(check bool) "still armed" true
    (Fault.with_scope (fun () -> Fault.check ~scoped:true ~core:0 "s")
    = Some Fault.Crash);
  Alcotest.(check bool) "scope closed again" false (Fault.in_scope ())

let test_deterministic_schedule () =
  with_faults @@ fun () ->
  let run ~seed ~interleave =
    Fault.reset ~seed ();
    Fault.set_clock (fun _ -> 0);
    Fault.arm ~budget:1000 ~site:"p" ~kind:Fault.Crash (Fault.Prob 0.2);
    Fault.arm ~budget:1000 ~site:"q" ~kind:Fault.Drop (Fault.Prob 0.2);
    (* The q checks interleave differently between runs; p's per-arm
       stream must not care. *)
    let hits = ref [] in
    for i = 1 to 200 do
      if interleave && i mod 3 = 0 then ignore (Fault.check ~core:0 "q");
      if Fault.check ~core:0 "p" <> None then hits := i :: !hits
    done;
    !hits
  in
  let a = run ~seed:42 ~interleave:false in
  let b = run ~seed:42 ~interleave:true in
  let c = run ~seed:43 ~interleave:false in
  Alcotest.(check (list int)) "same seed, same schedule" a b;
  Alcotest.(check bool) "different seed, different schedule" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Recovery over a real Subkernel                                      *)
(* ------------------------------------------------------------------ *)

let user_code = Sky_isa.Encode.encode_all [ Sky_isa.Insn.Nop; Sky_isa.Insn.Ret ]

let spawn_with_code k name =
  let p = Kernel.spawn k ~name in
  ignore (Kernel.map_code k p user_code);
  p

let echo ~core:_ msg = msg

let setup () =
  let machine = Machine.create ~cores:4 ~mem_mib:64 () in
  let k = Kernel.create machine in
  let sb = Subkernel.init k in
  let client = spawn_with_code k "client" in
  let server = spawn_with_code k "server" in
  let sid = Subkernel.register_server sb server echo in
  Subkernel.register_client_to_server sb client ~server_id:sid;
  Kernel.context_switch k ~core:0 client;
  (k, sb, client, server, sid)

let msg8 = Bytes.make 8 'm'

let test_crash_typed_error_and_restart () =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup () in
  Fault.reset ~seed:2 ();
  Fault.arm ~site:"server.server" ~kind:Fault.Crash (Fault.At_hit 1);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Error (Subkernel.Crashed { server_id }) ->
    Alcotest.(check int) "crashed server id" sid server_id
  | _ -> Alcotest.fail "expected Error Crashed");
  Alcotest.(check (list int)) "server marked dead" [ sid ]
    (Subkernel.dead_servers sb);
  (* A call to a dead server fails fast with the typed error. *)
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Error (Subkernel.Crashed _) -> ()
  | _ -> Alcotest.fail "dead server must refuse calls");
  Fault.disable ();
  Subkernel.restart_server sb ~server_id:sid;
  Alcotest.(check (list int)) "alive again" [] (Subkernel.dead_servers sb);
  (* The restart rebound the orphaned connection: calls flow again. *)
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Ok (reply, `Direct) ->
    Alcotest.(check bool) "echo" true (Bytes.equal reply msg8)
  | _ -> Alcotest.fail "expected direct success after restart");
  Alcotest.(check (list Alcotest.reject)) "audit clean" [] (Subkernel.audit sb)

let test_drop_is_timeout () =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup () in
  Fault.reset ~seed:2 ();
  Fault.arm ~site:"server.server" ~kind:Fault.Drop (Fault.At_hit 1);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Error (Subkernel.Timeout _) -> ()
  | _ -> Alcotest.fail "a dropped reply surfaces as a timeout");
  Fault.disable ();
  match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Ok (_, `Direct) -> ()
  | _ -> Alcotest.fail "lost reply must not poison the binding"

let test_hang_hits_watchdog () =
  with_faults @@ fun () ->
  let k, sb, client, _, sid = setup () in
  let cpu = Kernel.cpu k ~core:0 in
  Fault.reset ~seed:2 ();
  Fault.arm ~site:"server.server" ~kind:Fault.Hang (Fault.At_hit 1);
  let before = Cpu.cycles cpu in
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Error (Subkernel.Timeout { elapsed; _ }) ->
    Alcotest.(check bool) "elapsed past the default watchdog" true
      (elapsed > 1_000_000)
  | _ -> Alcotest.fail "expected watchdog timeout");
  Alcotest.(check bool) "hang cycles were really burned" true
    (Cpu.cycles cpu - before > 1_000_000);
  Alcotest.(check bool) "forced return counted" true
    (Subkernel.forced_returns sb > 0)

let test_revoke_degrades_to_slowpath () =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup () in
  Fault.reset ~seed:2 ();
  Fault.arm ~site:"subkernel.call" ~kind:Fault.Revoke (Fault.At_hit 1);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Ok (reply, `Slowpath) ->
    Alcotest.(check bool) "echo over slowpath" true (Bytes.equal reply msg8)
  | _ -> Alcotest.fail "revoked binding must degrade, not fail");
  Fault.disable ();
  (* Degradation is sticky until the client rebinds. *)
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Ok (_, `Slowpath) -> ()
  | _ -> Alcotest.fail "still degraded before rebind");
  Alcotest.(check bool) "degraded calls counted" true
    (Subkernel.degraded_calls sb >= 2);
  Subkernel.rebind sb client ~server_id:sid;
  match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Ok (_, `Direct) -> ()
  | _ -> Alcotest.fail "rebind must restore the direct path"

let test_ept_fault_revokes_binding () =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup () in
  (* Large message: the in-server copy walks guest page tables inside
     the fault scope, where the armed EPT fault fires. *)
  let big = Bytes.make 4096 'x' in
  Fault.reset ~seed:2 ();
  Fault.arm ~site:"mmu.walk" ~kind:Fault.Ept_fault (Fault.At_hit 1);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid big with
  | Error (Subkernel.Revoked { server_id }) ->
    Alcotest.(check int) "revoked server id" sid server_id
  | Ok _ -> Alcotest.fail "expected the EPT fault to abort the call"
  | Error _ -> Alcotest.fail "expected Error Revoked");
  Fault.disable ();
  (* Revoked -> slowpath until rebound, then direct again. *)
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid big with
  | Ok (_, `Slowpath) -> ()
  | _ -> Alcotest.fail "revoked binding degrades to slowpath");
  Subkernel.rebind sb client ~server_id:sid;
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid big with
  | Ok (reply, `Direct) ->
    Alcotest.(check bool) "payload intact" true (Bytes.equal reply big)
  | _ -> Alcotest.fail "rebind must restore the direct path");
  Alcotest.(check (list Alcotest.reject)) "audit clean" [] (Subkernel.audit sb)

(* Satellite: §7 forced abort must restore the client's callee-saved
   registers from the trampoline save area. *)
let callee_saved = Sky_isa.Reg.[ Rbx; Rbp; Rsp; R12; R13; R14; R15 ]

let test_forced_abort_restores_registers () =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup () in
  let regs = Subkernel.thread_regs sb client in
  let before = Array.copy regs in
  Fault.reset ~seed:5 ();
  Fault.arm ~site:"server.server" ~kind:Fault.Crash (Fault.At_hit 1);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Error (Subkernel.Crashed _) -> ()
  | _ -> Alcotest.fail "expected Error Crashed");
  Fault.disable ();
  List.iter
    (fun r ->
      let i = Sky_isa.Reg.encoding r in
      Alcotest.(check int64)
        (Printf.sprintf "%s restored" (Sky_isa.Reg.name r))
        before.(i) regs.(i))
    callee_saved;
  Alcotest.(check (list Alcotest.reject)) "trampoline.callee-saved holds" []
    (Subkernel.audit sb);
  (* Mutation check: an unrestored clobber must trip the audit rule. *)
  let saved = regs.(Sky_isa.Reg.encoding Sky_isa.Reg.Rbx) in
  regs.(Sky_isa.Reg.encoding Sky_isa.Reg.Rbx) <- 0xDEAD0000L;
  Alcotest.(check bool) "clobber detected" true
    (Sky_analysis.Report.has ~invariant:"trampoline.callee-saved"
       (Subkernel.audit sb));
  regs.(Sky_isa.Reg.encoding Sky_isa.Reg.Rbx) <- saved

let test_timeout_restores_registers () =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup () in
  let regs = Subkernel.thread_regs sb client in
  let before = Array.copy regs in
  Fault.reset ~seed:5 ();
  Fault.arm ~site:"server.server" ~kind:Fault.Hang (Fault.At_hit 1);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Error (Subkernel.Timeout _) -> ()
  | _ -> Alcotest.fail "expected watchdog timeout");
  Fault.disable ();
  List.iter
    (fun r ->
      let i = Sky_isa.Reg.encoding r in
      Alcotest.(check int64)
        (Printf.sprintf "%s restored after timeout" (Sky_isa.Reg.name r))
        before.(i) regs.(i))
    callee_saved;
  Alcotest.(check (list Alcotest.reject)) "audit clean" [] (Subkernel.audit sb)

(* Satellite: the security-event ring is bounded and counts drops. *)
let test_security_ring_bounded () =
  let _, sb, client, _, sid = setup () in
  for _ = 1 to Subkernel.security_ring_capacity + 50 do
    try
      ignore
        (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid
           ~attack:`Fake_server_key msg8)
    with Subkernel.Bad_server_key _ -> ()
  done;
  Alcotest.(check int) "ring capped"
    Subkernel.security_ring_capacity
    (List.length (Subkernel.security_events sb));
  Alcotest.(check bool) "drops counted" true
    (Subkernel.security_events_dropped sb >= 50)

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let test_retry_recovers_crash () =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup () in
  Fault.reset ~seed:3 ();
  Fault.arm ~site:"server.server" ~kind:Fault.Crash (Fault.At_hit 1);
  let stats = Retry.create_stats () in
  let reply = Retry.call ~stats sb ~core:0 ~client ~server_id:sid msg8 in
  Fault.disable ();
  Alcotest.(check bool) "echo after recovery" true (Bytes.equal reply msg8);
  Alcotest.(check int) "one retry" 1 stats.Retry.retried_ok;
  Alcotest.(check int) "one restart" 1 stats.Retry.restarts;
  Alcotest.(check int) "nothing lost" 0 stats.Retry.lost

let test_retry_gives_up () =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup () in
  Fault.reset ~seed:3 ();
  (* Crash on every dispatch: the budget outlasts the retry allowance. *)
  Fault.arm ~budget:100 ~site:"server.server" ~kind:Fault.Crash (Fault.Every 1);
  let stats = Retry.create_stats () in
  (match Retry.call ~max_attempts:3 ~stats sb ~core:0 ~client ~server_id:sid msg8 with
  | exception Retry.Gave_up (Subkernel.Crashed _) -> ()
  | _ -> Alcotest.fail "expected Gave_up");
  Fault.disable ();
  Alcotest.(check int) "loss counted" 1 stats.Retry.lost;
  Alcotest.(check int) "all attempts burned" 3 stats.Retry.attempts

(* ------------------------------------------------------------------ *)
(* Trace integration                                                   *)
(* ------------------------------------------------------------------ *)

let test_fault_and_recovery_traced () =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup () in
  Sky_trace.Trace.clear ();
  Sky_trace.Trace.enable ();
  Fault.reset ~seed:4 ();
  Fault.arm ~site:"server.server" ~kind:Fault.Crash (Fault.At_hit 1);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Error (Subkernel.Crashed _) -> ()
  | _ -> Alcotest.fail "expected Error Crashed");
  Fault.disable ();
  Subkernel.restart_server sb ~server_id:sid;
  Sky_trace.Trace.disable ();
  let events = Sky_trace.Trace.events () in
  let have cat name =
    List.exists
      (fun e -> e.Sky_trace.Trace.cat = cat && e.Sky_trace.Trace.name = name)
      events
  in
  Alcotest.(check bool) "fault instant" true (have "fault" "fault.server.server");
  Alcotest.(check bool) "reap instant" true (have "recovery" "recovery.reap");
  Alcotest.(check bool) "forced return span" true
    (have "recovery" "recovery.forced_return");
  Alcotest.(check bool) "restart instant" true
    (have "recovery" "recovery.restart")

let test_fault_trace_noop_when_disabled () =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup () in
  Sky_trace.Trace.clear ();
  (* Tracing off: a firing fault must emit nothing. *)
  Fault.reset ~seed:4 ();
  Fault.arm ~site:"server.server" ~kind:Fault.Crash (Fault.At_hit 1);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Error (Subkernel.Crashed _) -> ()
  | _ -> Alcotest.fail "expected Error Crashed");
  Fault.disable ();
  Alcotest.(check int) "no trace events" 0
    (List.length (Sky_trace.Trace.events ()))

let test_hooks_cycle_neutral () =
  with_faults @@ fun () ->
  let k, sb, client, _, sid = setup () in
  let cpu = Kernel.cpu k ~core:0 in
  let cost () =
    let c0 = Cpu.cycles cpu in
    ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid msg8);
    Cpu.cycles cpu - c0
  in
  ignore (cost ()) (* warm *);
  let off = cost () in
  Fault.reset ~seed:9 () (* enabled, nothing armed *);
  let on = cost () in
  Fault.arm ~site:"server.server" ~kind:Fault.Crash (Fault.At_hit 10_000);
  let armed = cost () in
  Fault.disable ();
  Alcotest.(check int) "enabled engine costs no cycles" off on;
  Alcotest.(check int) "non-firing arm costs no cycles" off armed

(* ------------------------------------------------------------------ *)
(* Determinism end-to-end                                              *)
(* ------------------------------------------------------------------ *)

let storm_run seed =
  let _, sb, client, _, sid = setup () in
  Fault.reset ~seed ();
  Fault.arm ~budget:3 ~site:"server.server" ~kind:Fault.Crash (Fault.Every 7);
  Fault.arm ~budget:2 ~site:"sim.cycle" ~kind:Fault.Crash (Fault.Prob 1e-4);
  let stats = Retry.create_stats () in
  for _ = 1 to 40 do
    ignore (Retry.call ~stats sb ~core:0 ~client ~server_id:sid msg8)
  done;
  Fault.disable ();
  (Fault.fired (), stats.Retry.attempts, stats.Retry.restarts)

let test_storm_deterministic () =
  with_faults @@ fun () ->
  let f1, a1, r1 = storm_run 11 in
  let f2, a2, r2 = storm_run 11 in
  Alcotest.(check bool) "identical fired logs" true (f1 = f2);
  Alcotest.(check int) "identical attempts" a1 a2;
  Alcotest.(check int) "identical restarts" r1 r2;
  Alcotest.(check bool) "storm actually fired" true (List.length f1 > 0)

(* ------------------------------------------------------------------ *)
(* qcheck crash sweeps                                                 *)
(* ------------------------------------------------------------------ *)

let crash_sweep =
  QCheck.Test.make
    ~name:"crash at a random point -> typed error, clean audit, fresh binding works"
    ~count:15
    QCheck.(pair small_nat (int_bound 2))
    (fun (seed, kidx) ->
      with_faults @@ fun () ->
      let k, sb, client, _, sid = setup () in
      let cpu = Kernel.cpu k ~core:0 in
      let big = Bytes.make 2048 'y' in
      ignore (Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid big);
      Fault.reset ~seed ();
      let kind =
        match kidx with 0 -> Fault.Crash | 1 -> Fault.Drop | _ -> Fault.Ept_fault
      in
      (* A random in-call cycle: scoped, so it can only land while the
         client executes inside the server's space. *)
      Fault.arm ~site:"sim.cycle" ~kind
        (Fault.At_cycle (Cpu.cycles cpu + 1 + (seed * 131 mod 997)));
      let outcome = Subkernel.call sb ~core:0 ~client ~server_id:sid big in
      Fault.disable ();
      (* Whatever happened, the machine must audit clean... *)
      if Subkernel.audit sb <> [] then false
      else begin
        (* ...and recovery must leave the connection usable. *)
        (match outcome with
        | Ok _ -> ()
        | Error (Subkernel.Crashed { server_id }) ->
          Subkernel.restart_server sb ~server_id
        | Error (Subkernel.Revoked { server_id }) ->
          Subkernel.rebind sb client ~server_id
        | Error (Subkernel.Timeout _) -> ());
        let reply =
          Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid big
        in
        Bytes.equal reply big && Subkernel.audit sb = []
      end)

let fs_crash_sweep =
  QCheck.Test.make
    ~name:"fs crash sweep: restart + remount leave a consistent image"
    ~count:5 QCheck.small_nat
    (fun seed ->
      with_faults @@ fun () ->
      let stack =
        Sky_experiments.Stack.build ~transport:Sky_experiments.Stack.Skybridge
          ~resilient:true ~cores:2 ~disk_blocks:2048 ()
      in
      let db = stack.Sky_experiments.Stack.db in
      let sb =
        match stack.Sky_experiments.Stack.sb with
        | Some sb -> sb
        | None -> assert false
      in
      Fault.reset ~seed ();
      Fault.arm ~budget:1 ~site:"server.xv6fs" ~kind:Fault.Crash
        (Fault.At_hit (1 + (seed mod 13)));
      Fault.arm ~budget:1 ~site:"sim.cycle" ~kind:Fault.Crash
        (Fault.Prob 5e-5);
      let v = Bytes.make 64 'z' in
      for key = 0 to 29 do
        Sky_sqldb.Db.insert db ~core:0 ~key ~value:v
      done;
      Fault.disable ();
      let stats =
        match Sky_experiments.Stack.retry_stats stack with
        | Some s -> s
        | None -> assert false
      in
      stats.Retry.lost = 0
      && Sky_xv6fs.Fsck.check (Sky_experiments.Stack.fs stack) ~core:0 = []
      && Subkernel.audit sb = [])

(* ------------------------------------------------------------------ *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [
      ( "engine",
        [
          Alcotest.test_case "triggers: at-hit / every / budget" `Quick
            test_triggers;
          Alcotest.test_case "at-cycle uses the installed clock" `Quick
            test_at_cycle;
          Alcotest.test_case "scoped sites only fire in scope" `Quick
            test_scope_gating;
          Alcotest.test_case "per-arm streams are interleaving-independent"
            `Quick test_deterministic_schedule;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash -> typed error -> restart -> recovered"
            `Quick test_crash_typed_error_and_restart;
          Alcotest.test_case "dropped reply -> timeout" `Quick
            test_drop_is_timeout;
          Alcotest.test_case "hang -> watchdog forced return" `Quick
            test_hang_hits_watchdog;
          Alcotest.test_case "revocation degrades to slowpath" `Quick
            test_revoke_degrades_to_slowpath;
          Alcotest.test_case "EPT fault revokes the binding" `Quick
            test_ept_fault_revokes_binding;
          Alcotest.test_case "forced abort restores callee-saved regs" `Quick
            test_forced_abort_restores_registers;
          Alcotest.test_case "watchdog timeout restores callee-saved regs"
            `Quick test_timeout_restores_registers;
          Alcotest.test_case "security ring bounded with drop count" `Quick
            test_security_ring_bounded;
        ] );
      ( "retry",
        [
          Alcotest.test_case "crash recovered within budget" `Quick
            test_retry_recovers_crash;
          Alcotest.test_case "persistent crash gives up with typed error"
            `Quick test_retry_gives_up;
        ] );
      ( "trace",
        [
          Alcotest.test_case "fault + recovery events traced" `Quick
            test_fault_and_recovery_traced;
          Alcotest.test_case "no events when tracing disabled" `Quick
            test_fault_trace_noop_when_disabled;
          Alcotest.test_case "hooks are cycle-neutral" `Quick
            test_hooks_cycle_neutral;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, identical storm" `Quick
            test_storm_deterministic;
        ] );
      ("sweep", qc [ crash_sweep; fs_crash_sweep ]);
    ]
