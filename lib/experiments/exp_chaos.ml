(** Chaos: deterministic fault storms over the two flagship workloads.

    Scenario A runs the §2.1.2 KV pipeline (client → enc → kv) with the
    full storm — handler crashes, hangs past the watchdog, dropped
    replies, spurious EPT violations mid-walk, binding revocation at
    call entry, and random mid-server crashes — every call wrapped in
    {!Sky_core.Retry.call}. Scenario B runs the §6.5 SQLite stack
    (client → xv6fs → blockdev) with the crash-safe subset (dispatch
    crashes, hangs, random mid-op crashes): each crash triggers a server
    restart plus an FS remount, whose log recovery must leave the image
    consistent (checked by fsck afterwards). Scenario C storms the
    skyhttpd web stack, and scenario D the URI-routed service mesh —
    name-service crashes mid-resolve, receiver crashes mid-request and
    backend crashes layered under the scripted hot upgrade and
    capability revocation.

    Everything is seeded: the same [--seed] yields a bit-identical
    census, byte for byte, run after run. *)

open Sky_ukernel
open Sky_kvstore
open Sky_harness
module Fault = Sky_faults.Fault
module Subkernel = Sky_core.Subkernel

type scenario = {
  s_name : string;
  s_attempts : int;  (** call attempts, including retries *)
  s_injected : (string * int) list;  (** faults fired, per site *)
  s_recovered : int;  (** calls that succeeded after >= 1 retry *)
  s_degraded : int;  (** calls served via the slowpath fallback *)
  s_lost : int;  (** calls that exhausted the retry budget *)
  s_restarts : int;  (** server restarts *)
  s_forced_returns : int;  (** §7 forced VMFUNC-0 returns *)
  s_sec_dropped : int;  (** security-ring overflow drops *)
  s_audit : int;  (** post-storm audit violations — must be 0 *)
  s_fsck : int option;  (** fsck problems when the server was the FS *)
}

type census = { c_seed : int; c_scenarios : scenario list }

(* ---- scenario A: the KV pipeline under the full storm ---- *)

let kv_storm seed =
  Fault.reset ~seed ();
  Fault.arm ~budget:2 ~site:"server.enc-server" ~kind:Fault.Crash (Fault.At_hit 30);
  Fault.arm ~budget:3 ~site:"server.kv-server" ~kind:Fault.Crash (Fault.Every 45);
  Fault.arm ~budget:1 ~site:"server.kv-server" ~kind:Fault.Hang (Fault.At_hit 70);
  Fault.arm ~budget:2 ~site:"server.enc-server" ~kind:Fault.Drop (Fault.At_hit 110);
  Fault.arm ~budget:2 ~site:"mmu.walk" ~kind:Fault.Ept_fault (Fault.Prob 2e-3);
  Fault.arm ~budget:2 ~site:"sim.cycle" ~kind:Fault.Crash (Fault.Prob 1e-4);
  Fault.arm ~budget:1 ~site:"subkernel.call" ~kind:Fault.Revoke (Fault.At_hit 650)

let run_kv ~seed =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:128 () in
  let kernel = Kernel.create machine in
  let sb = Subkernel.init kernel in
  let p = Pipeline.create ~sb ~resilient:true kernel Pipeline.Skybridge in
  ignore (Pipeline.run p ~core:0 ~ops:32 ~len:64) (* warm, faults off *);
  kv_storm seed;
  let lost_hard = ref 0 in
  (for i = 1 to 400 do
     (* The workload itself is the integrity check: every query verifies
        decrypt(store(encrypt(v))) = v across whatever recovery path the
        storm forced the call down. *)
     try
       if i land 1 = 0 then Pipeline.query p ~core:0 ~len:64
       else Pipeline.insert p ~core:0 ~len:64
     with Sky_core.Retry.Gave_up _ -> incr lost_hard
   done);
  Fault.disable ();
  let st =
    match Pipeline.retry_stats p with Some s -> s | None -> assert false
  in
  {
    s_name = "kv-pipeline";
    s_attempts = st.Sky_core.Retry.attempts;
    s_injected = Fault.fired_counts ();
    s_recovered = st.Sky_core.Retry.retried_ok;
    s_degraded = st.Sky_core.Retry.degraded;
    s_lost = st.Sky_core.Retry.lost + !lost_hard;
    s_restarts = st.Sky_core.Retry.restarts;
    s_forced_returns = Subkernel.forced_returns sb;
    s_sec_dropped = Subkernel.security_events_dropped sb;
    s_audit = List.length (Subkernel.audit sb);
    s_fsck = None;
  }

(* ---- scenario B: the SQLite/xv6fs stack under the crash-safe storm ---- *)

(* Only faults whose retry is idempotent at the FS level: dispatch-entry
   crashes (state untouched), hangs (the op completes, the reply is
   lost, the re-applied op rewrites the same bytes), and random mid-op
   crashes (the remount's log recovery rolls the partial op back). *)
let fs_storm seed =
  Fault.reset ~seed ();
  Fault.arm ~budget:2 ~site:"server.xv6fs" ~kind:Fault.Crash (Fault.At_hit 25);
  Fault.arm ~budget:1 ~site:"server.blockdev" ~kind:Fault.Crash (Fault.At_hit 180);
  Fault.arm ~budget:1 ~site:"server.xv6fs" ~kind:Fault.Hang (Fault.At_hit 90);
  Fault.arm ~budget:2 ~site:"sim.cycle" ~kind:Fault.Crash (Fault.Prob 5e-5)

let run_fs ~seed =
  let stack =
    Stack.build ~transport:Stack.Skybridge ~resilient:true ~cores:4
      ~disk_blocks:4096 ()
  in
  let db = stack.Stack.db in
  let sb = match stack.Stack.sb with Some sb -> sb | None -> assert false in
  let rng = Sky_sim.Rng.create ~seed:0xc4a05 in
  let value () = Sky_sim.Rng.bytes rng 100 in
  for key = 0 to 31 do
    Sky_sqldb.Db.insert db ~core:0 ~key ~value:(value ())
  done;
  fs_storm seed;
  let lost_hard = ref 0 in
  (for i = 0 to 119 do
     try
       match i mod 3 with
       | 0 -> Sky_sqldb.Db.insert db ~core:0 ~key:(100 + i) ~value:(value ())
       | 1 -> ignore (Sky_sqldb.Db.update db ~core:0 ~key:(i mod 32) ~value:(value ()))
       | _ -> ignore (Sky_sqldb.Db.query db ~core:0 ~key:(i mod 32))
     with Sky_core.Retry.Gave_up _ -> incr lost_hard
   done);
  Fault.disable ();
  let st =
    match Stack.retry_stats stack with Some s -> s | None -> assert false
  in
  let fsck = Sky_xv6fs.Fsck.check (Stack.fs stack) ~core:0 in
  {
    s_name = "sqlite-xv6fs";
    s_attempts = st.Sky_core.Retry.attempts;
    s_injected = Fault.fired_counts ();
    s_recovered = st.Sky_core.Retry.retried_ok;
    s_degraded = st.Sky_core.Retry.degraded;
    s_lost = st.Sky_core.Retry.lost + !lost_hard;
    s_restarts = st.Sky_core.Retry.restarts;
    s_forced_returns = Subkernel.forced_returns sb;
    s_sec_dropped = Subkernel.security_events_dropped sb;
    s_audit = List.length (Subkernel.audit sb);
    s_fsck = Some (List.length fsck);
  }

(* ---- scenario C: the web stack under a worker + backend storm ---- *)

(* skyhttpd workers crash mid-request (the ["server.httpd"] site checks
   before any backend call, so the parked request replays cleanly) and
   hang past the watchdog; the KV backend crashes at dispatch (state
   untouched, Retry restarts and re-issues); the FS backend crashes
   during the post-restart cache re-reads (a worker crash wipes its
   static-file cache, so the big-locked FS is back on the serving path
   until the cache re-warms — Retry remounts and retries). *)
let web_storm seed =
  Fault.reset ~seed ();
  Fault.arm ~budget:3 ~site:Sky_net.Httpd.fault_site ~kind:Fault.Crash
    (Fault.Every 23);
  Fault.arm ~budget:1 ~site:Sky_net.Httpd.fault_site ~kind:Fault.Hang
    (Fault.At_hit 50);
  Fault.arm ~budget:2 ~site:"server.kvstore" ~kind:Fault.Crash (Fault.At_hit 40);
  Fault.arm ~budget:1 ~site:"server.xv6fs" ~kind:Fault.Crash (Fault.At_hit 2)

let run_web ~seed =
  let w =
    Sky_net.Web.build ~seed ~cores:4 ~conns:24 ~requests_per_conn:4 ~workers:3
      ~transport:Sky_net.Web.Skybridge ()
  in
  let sb = match Sky_net.Web.subkernel w with Some sb -> sb | None -> assert false in
  (* Arm after build: boot (preload through the FS) runs fault-free. *)
  web_storm seed;
  Sky_net.Web.run w;
  Fault.disable ();
  let st =
    match Sky_net.Web.retry_stats w with Some s -> s | None -> assert false
  in
  let lg = Sky_net.Web.loadgen w in
  let httpd = Sky_net.Web.httpd w in
  let dropped =
    Sky_net.Loadgen.expected lg - Sky_net.Loadgen.responses lg
    + Sky_net.Loadgen.errors lg
  in
  let fsck = Sky_xv6fs.Fsck.check (Sky_net.Web.fs w) ~core:0 in
  {
    s_name = "web-skyhttpd";
    s_attempts = st.Sky_core.Retry.attempts;
    s_injected = Fault.fired_counts ();
    s_recovered = st.Sky_core.Retry.retried_ok;
    s_degraded = st.Sky_core.Retry.degraded;
    s_lost = st.Sky_core.Retry.lost + dropped;
    s_restarts = st.Sky_core.Retry.restarts + Sky_net.Httpd.restarts httpd;
    s_forced_returns = Subkernel.forced_returns sb;
    s_sec_dropped = Subkernel.security_events_dropped sb;
    s_audit = List.length (Subkernel.audit sb);
    s_fsck = Some (List.length fsck);
  }

(* ---- scenario D: the URI-routed service mesh under storm ---- *)

(* The three mesh-specific failure points: the name service crashes
   mid-resolve (clients must re-resolve through Retry and land on a
   restarted nameserv with a coherent registry), an endpoint receiver
   crashes mid-request (the parked request replays, the wake fans out
   to the surviving receivers), and the KV backend crashes at dispatch.
   The scripted hot upgrade and fs:// revocation from [Exp_mesh] run
   concurrently with the storm. *)
let mesh_storm seed =
  Fault.reset ~seed ();
  Fault.arm ~budget:2 ~site:Sky_mesh.Mesh.fault_site ~kind:Fault.Crash
    (Fault.At_hit 9);
  Fault.arm ~budget:2 ~site:Sky_net.Httpd.fault_site ~kind:Fault.Crash
    (Fault.Every 31);
  Fault.arm ~budget:1 ~site:Sky_net.Httpd.fault_site ~kind:Fault.Hang
    (Fault.At_hit 75);
  Fault.arm ~budget:2 ~site:"server.kvstore" ~kind:Fault.Crash (Fault.At_hit 55)

let run_mesh ~seed =
  let r = Exp_mesh.run_mesh ~seed ~storm:(fun () -> mesh_storm seed) () in
  Fault.disable ();
  {
    s_name = "mesh-uri-routed";
    s_attempts = r.Exp_mesh.m_attempts;
    s_injected = Fault.fired_counts ();
    s_recovered = r.Exp_mesh.m_recovered;
    s_degraded = r.Exp_mesh.m_degraded;
    s_lost = r.Exp_mesh.m_lost;
    s_restarts = r.Exp_mesh.m_restarts;
    s_forced_returns = r.Exp_mesh.m_forced_returns;
    s_sec_dropped = r.Exp_mesh.m_sec_dropped;
    (* The differential Isoflow gate rides the audit count: a stale
       writable mapping left by crash → restart → rebind under storm
       fails the census exactly like a static violation. *)
    s_audit =
      r.Exp_mesh.m_audit + r.Exp_mesh.m_mesh_audit + r.Exp_mesh.m_graph_stale;
    s_fsck = Some r.Exp_mesh.m_fsck;
  }

(* ---- census ---- *)

let run_chaos ~seed =
  let a = run_kv ~seed in
  (* Decorrelate the storms while keeping each a function of [seed]. *)
  let b = run_fs ~seed:(seed lxor 0x5eed) in
  let c = run_web ~seed:(seed lxor 0x3eb) in
  let d = run_mesh ~seed:(seed lxor 0x3e5b) in
  { c_seed = seed; c_scenarios = [ a; b; c; d ] }

let clean c =
  List.for_all
    (fun s ->
      s.s_lost = 0 && s.s_audit = 0
      && match s.s_fsck with None | Some 0 -> true | Some _ -> false)
    c.c_scenarios

let census_to_json c =
  let open Sky_trace.Json in
  let scenario s =
    Obj
      ([
         ("name", String s.s_name);
         ("attempts", Int s.s_attempts);
         ( "injected",
           Obj (List.map (fun (site, n) -> (site, Int n)) s.s_injected) );
         ("recovered", Int s.s_recovered);
         ("degraded", Int s.s_degraded);
         ("lost", Int s.s_lost);
         ("restarts", Int s.s_restarts);
         ("forced_returns", Int s.s_forced_returns);
         ("security_dropped", Int s.s_sec_dropped);
         ("audit_violations", Int s.s_audit);
       ]
      @ match s.s_fsck with None -> [] | Some n -> [ ("fsck_problems", Int n) ])
  in
  to_string
    (Obj
       [
         ("seed", Int c.c_seed);
         ("clean", Bool (clean c));
         ("scenarios", List (List.map scenario c.c_scenarios));
       ])

let census_table c =
  let row s =
    [
      s.s_name;
      string_of_int (List.fold_left (fun a (_, n) -> a + n) 0 s.s_injected);
      string_of_int s.s_attempts;
      string_of_int s.s_recovered;
      string_of_int s.s_degraded;
      string_of_int s.s_lost;
      string_of_int s.s_restarts;
      string_of_int s.s_forced_returns;
      string_of_int s.s_audit;
      (match s.s_fsck with None -> "-" | Some n -> string_of_int n);
    ]
  in
  Tbl.make
    ~title:(Printf.sprintf "Chaos: fault storm census (seed %d)" c.c_seed)
    ~header:
      [
        "scenario"; "injected"; "attempts"; "recovered"; "degraded"; "lost";
        "restarts"; "forced ret"; "audit"; "fsck";
      ]
    ~notes:
      [
        "acceptance: lost = 0, audit = 0, fsck = 0 — every injected fault \
         is recovered (retry), degraded (slowpath) or surfaced as a typed \
         error, never silent corruption";
      ]
    (List.map row c.c_scenarios)

let run () = census_table (run_chaos ~seed:1)
