(** Closed-loop load generator on the wire side of the {!Nic}.

    Models a fleet of clients one RTT away: each connection keeps exactly
    one request outstanding, and the response's TX completion schedules
    the next request [rtt] cycles later. Running on the wire side (the
    NIC's DMA hooks) costs the simulated cores nothing — all charged
    cycles belong to the server, as with a load generator on a separate
    physical machine.

    Flow placement is RSS-aware, like real load testers that pick source
    ports to balance receive queues: connection [i] gets a flow id whose
    RSS hash lands on queue [i mod n_queues], so offered load stays
    balanced however many workers are configured.

    Every response is validated against what the request should produce
    (PUTs echo "stored", GETs return the value this connection previously
    stored, file reads match the provisioned file), so lost, duplicated,
    or corrupted requests surface as [errors] — the chaos experiment's
    zero-lost-requests check. *)

open Sky_sim

type mix = Workload.mix = { m_kv_get : int; m_kv_put : int; m_fs_get : int }

let default_mix = Workload.default_mix

type expect = Workload.expect =
  | Stored
  | Value of bytes
  | File of bytes

type flow_state = {
  f_flow : int;
  f_queue : int;
  f_rng : Rng.t;
  f_total : int;
  mutable f_sent : int;  (** requests injected (= next packet seq) *)
  mutable f_done : int;
  mutable f_sent_at : int;
  mutable f_expect : expect;
  mutable f_puts : (string * bytes) list;  (** keys this flow stored *)
}

type t = {
  nic : Nic.t;
  mix : mix;
  rtt : int;
  files : (string * bytes) array;
  flows : flow_state array;
  by_flow : (int, flow_state) Hashtbl.t;
  remaining : int array;  (** responses still owed, per queue *)
  hist : Sky_trace.Histogram.t;
  mutable responses : int;
  mutable errors : int;
}

let value_bytes = Workload.value_bytes

let create nic ~seed ~mix ~conns ~requests_per_conn ~rtt ~files =
  if conns <= 0 then invalid_arg "Loadgen.create: conns";
  if requests_per_conn <= 0 then invalid_arg "Loadgen.create: requests_per_conn";
  let nq = Nic.n_queues nic in
  let flow_ids = Workload.place_flows nic ~conns in
  let remaining = Array.make nq 0 in
  let flows =
    Array.mapi
      (fun i flow ->
        let queue = Nic.queue_of_flow nic flow in
        remaining.(queue) <- remaining.(queue) + requests_per_conn;
        {
          f_flow = flow;
          f_queue = queue;
          f_rng = Rng.create ~seed:(seed + (i * 0x9e3779b9) + flow);
          f_total = requests_per_conn;
          f_sent = 0;
          f_done = 0;
          f_sent_at = 0;
          f_expect = Stored;
          f_puts = [];
        })
      flow_ids
  in
  let by_flow = Hashtbl.create (2 * conns) in
  Array.iter (fun f -> Hashtbl.replace by_flow f.f_flow f) flows;
  {
    nic;
    mix;
    rtt;
    files;
    flows;
    by_flow;
    remaining;
    hist = Sky_trace.Histogram.create ();
    responses = 0;
    errors = 0;
  }

(* Build connection [f]'s next request. The first request is always a
   PUT (seeding the keyspace this connection will read back); after that
   the mix weights decide, with GET falling back to PUT until the flow
   has stored something. *)
let next_request t f =
  let n = f.f_sent in
  let put () =
    let key = Printf.sprintf "f%d-k%d" f.f_flow (List.length f.f_puts) in
    let value = value_bytes f.f_rng f.f_flow n in
    f.f_puts <- (key, value) :: f.f_puts;
    f.f_expect <- Stored;
    Http.Kv_put (key, value)
  in
  if n = 0 then put ()
  else begin
    let { m_kv_get; m_kv_put; m_fs_get } = t.mix in
    let total = m_kv_get + m_kv_put + m_fs_get in
    let roll = Rng.int f.f_rng total in
    if roll < m_kv_get && f.f_puts <> [] then begin
      let key, value = List.nth f.f_puts (Rng.int f.f_rng (List.length f.f_puts)) in
      f.f_expect <- Value value;
      Http.Kv_get key
    end
    else if roll < m_kv_get + m_kv_put || f.f_puts = [] || Array.length t.files = 0
    then put ()
    else begin
      let name, data = t.files.(Rng.int f.f_rng (Array.length t.files)) in
      f.f_expect <- File data;
      Http.Fs_get name
    end
  end

let inject t f ~at =
  let payload = Http.serialize_request (next_request t f) in
  let seq = f.f_sent in
  f.f_sent <- seq + 1;
  f.f_sent_at <- at;
  Nic.deliver t.nic ~flow:f.f_flow ~seq ~payload ~at

let validate t f (resp : Http.response) =
  if not (Workload.body_matches f.f_expect resp) then t.errors <- t.errors + 1

(* TX-completion hook: account the response, then keep the loop closed by
   scheduling the connection's next request one RTT out. *)
let on_response t (pkt : Nic.pkt) =
  match Hashtbl.find_opt t.by_flow pkt.Nic.flow with
  | None -> t.errors <- t.errors + 1
  | Some f ->
    (match Http.parse_response pkt.Nic.payload with
    | resp -> validate t f resp
    | exception Http.Bad_request _ -> t.errors <- t.errors + 1);
    Sky_trace.Histogram.add t.hist (pkt.Nic.deliver_at - f.f_sent_at);
    f.f_done <- f.f_done + 1;
    t.responses <- t.responses + 1;
    t.remaining.(f.f_queue) <- t.remaining.(f.f_queue) - 1;
    if f.f_done < f.f_total then inject t f ~at:(pkt.Nic.deliver_at + t.rtt)

let start t ~at =
  Nic.set_on_tx t.nic (on_response t);
  (* SYNs arrive staggered, as from clients with distinct path delays. *)
  Array.iteri (fun i f -> inject t f ~at:(at + (i * 57))) t.flows

let queue_done t ~queue = t.remaining.(queue) = 0
let finished t = Array.for_all (fun r -> r = 0) t.remaining
let responses t = t.responses
let errors t = t.errors
let expected t = Array.fold_left (fun a f -> a + f.f_total) 0 t.flows
let latencies t = t.hist
let conns t = Array.length t.flows
