lib/sim/memsys.mli: Cpu
