lib/xv6fs/bcache.mli: Sky_sim
