(** Physical memory access path through the cache hierarchy.

    Every physical access (instruction fetch, data load/store, page-table
    and EPT-entry read) goes through here. The access walks
    L1 → L2 → shared L3 → DRAM, charges the latency of the level that hit
    onto the core's cycle counter, and fills the missed levels. *)

type kind = Insn | Data

val access : Cpu.t -> kind -> int -> unit
(** [access cpu kind pa] performs one cached access to the line containing
    physical address [pa]: charges latency, updates miss counters. *)

val access_state_only : Cpu.t -> kind -> int -> unit
(** Update cache contents and miss counters without charging latency.
    Used for kernel-path footprints whose execution cost is already
    covered by a measured constant — the *pollution* is modelled, the
    cycles are not double-counted. *)

val touch_range_state_only : Cpu.t -> kind -> pa:int -> len:int -> unit

val access_uncached : Cpu.t -> unit
(** A DRAM access that bypasses the hierarchy (device memory). *)

val touch_range : Cpu.t -> kind -> pa:int -> len:int -> unit
(** Access every 64-byte line of [pa, pa+len) — used to model code or data
    footprints (e.g. the kernel text executed during an IPC). *)

(** Host-side hot lines: a flat direct-mapped memo over recent TLB hits,
    keyed by (core, i/d-side, VPN). A successful probe revalidates the
    remembered {!Tlb.slot} and reproduces the exact observable state of
    a TLB hit (simulated cycles, counters, LRU) while letting the
    translation layer skip its walk machinery — a pure host wall-clock
    optimization. Cleared on fault-scope entry so chaos runs are
    bit-identical. *)
module Hotline : sig
  type line

  type table
  (** One hot-line memo table. Single-machine runs share the
      process-wide default; the parallel scheduler binds a fresh table
      per shard ({!with_table}, domain-local) so one shard's fault-scope
      clears can never drop another shard's lines. *)

  val fresh_table : unit -> table
  val with_table : table -> (unit -> 'a) -> 'a

  val line_for : core:int -> insn:bool -> vpn:int -> line
  val probe : line -> tlb:Tlb.t -> asid:int -> vpn:int -> Tlb.entry option
  val record : line -> tlb:Tlb.t -> slot:Tlb.slot -> asid:int -> vpn:int -> unit

  val clear_all : unit -> unit
  (** Drop every line of the current table. *)
end
