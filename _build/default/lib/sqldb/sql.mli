(** A small SQL front end over {!Db} — enough of the language for the
    paper's four basic operations (Table 4) to be written the way a
    SQLite client would write them:

    {v
      INSERT INTO kv VALUES (42, 'payload')
      SELECT value FROM kv WHERE key = 42
      UPDATE kv SET value = 'new' WHERE key = 42
      DELETE FROM kv WHERE key = 42
    v}

    Statements are parsed (with real errors), charged as part of the SQL
    compute the DB layer models, and executed against the B+tree. *)

type stmt =
  | Insert of { table : string; key : int; value : string }
  | Select of { table : string; key : int }
  | Update of { table : string; key : int; value : string }
  | Delete of { table : string; key : int }

exception Parse_error of string

val parse : string -> stmt
(** Case-insensitive keywords; string literals in single quotes with
    [''] escaping.
    @raise Parse_error with a human-readable message. *)

type result =
  | Ok_affected of int  (** rows affected (0 or 1) *)
  | Row of string  (** SELECT hit *)
  | Empty  (** SELECT miss *)

val exec : Db.t -> core:int -> string -> result
(** Parse and run one statement. The table name must match the one the
    {!Db.t} was created with.
    @raise Parse_error on syntax errors or a wrong table name. *)
