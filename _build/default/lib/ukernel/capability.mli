(** seL4-style capabilities for IPC endpoints.

    The paper's baseline fastpath cost includes "various security checks,
    endpoint management and capability enforcement" (§2.1.1); this module
    makes the capability part real. Capabilities name an endpoint, carry
    rights and a badge, and form a derivation tree (seL4's CDT):
    [derive] hands out diminished children, [revoke] destroys an entire
    subtree at once, cutting off every process the subtree was granted
    to. *)

type rights = { send : bool; recv : bool; grant : bool }

val all_rights : rights
val send_only : rights

type t
(** A capability handle (owned by one process, naming one endpoint). *)

type registry
(** All capability spaces of one kernel instance. *)

exception Cap_denied of { pid : int; target : int; reason : string }

val create_registry : unit -> registry

val mint :
  registry -> owner:int -> target:int -> rights:rights -> badge:int -> t
(** A fresh root capability (kernel privilege — used at endpoint
    registration). *)

val derive : registry -> t -> new_owner:int -> ?badge:int -> rights -> t
(** Child capability with rights diminished to the intersection. The
    parent must carry [grant].
    @raise Cap_denied if the parent lacks [grant] or has been revoked. *)

val revoke : registry -> t -> unit
(** Destroy every descendant (transitively, across processes); the
    capability itself survives — seL4 semantics. *)

val delete : registry -> t -> unit
(** Destroy this capability and its subtree. *)

val is_live : registry -> t -> bool
val owner : t -> int
val target : t -> int
val badge : t -> int
val rights : t -> rights

val check : registry -> pid:int -> target:int -> need:rights -> bool
(** Does [pid] hold any live capability on [target] covering [need]? *)

val caps_of : registry -> pid:int -> t list
