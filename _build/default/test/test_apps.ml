(* Tests for the KV pipeline (RC4 + KV store + all five interconnects)
   and the YCSB workload generator. *)

open Sky_ukernel
open Sky_kvstore

let machine_kernel ?(variant = Config.Sel4) () =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:128 () in
  let k = Kernel.create ~config:(Config.default variant) machine in
  (machine, k)

(* ------------------------------------------------------------------ *)
(* RC4                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rc4_roundtrip () =
  let machine, _ = machine_kernel () in
  let cpu = Sky_sim.Machine.core machine 0 in
  let c = Rc4.create machine ~key:"secret" in
  let plain = Bytes.of_string "attack at dawn" in
  let cipher = Rc4.crypt c cpu plain in
  Alcotest.(check bool) "actually encrypts" false (Bytes.equal plain cipher);
  Alcotest.(check bool) "decrypt restores" true
    (Bytes.equal plain (Rc4.crypt c cpu cipher))

let test_rc4_known_vector () =
  (* RFC 6229-style check: RC4("Key", "Plaintext") = BBF316E8D940AF0AD3. *)
  let out = Rc4.crypt_pure (Bytes.of_string "Key") (Bytes.of_string "Plaintext") in
  let hex =
    String.concat ""
      (List.init (Bytes.length out) (fun i ->
           Printf.sprintf "%02X" (Char.code (Bytes.get out i))))
  in
  Alcotest.(check string) "test vector" "BBF316E8D940AF0AD3" hex

let test_rc4_charges_cycles () =
  let machine, _ = machine_kernel () in
  let cpu = Sky_sim.Machine.core machine 0 in
  let c = Rc4.create machine ~key:"k" in
  let t0 = Sky_sim.Cpu.cycles cpu in
  ignore (Rc4.crypt c cpu (Bytes.create 1024));
  let big = Sky_sim.Cpu.cycles cpu - t0 in
  let t1 = Sky_sim.Cpu.cycles cpu in
  ignore (Rc4.crypt c cpu (Bytes.create 16));
  let small = Sky_sim.Cpu.cycles cpu - t1 in
  Alcotest.(check bool) "cost scales with size" true (big > small)

(* ------------------------------------------------------------------ *)
(* KV server                                                           *)
(* ------------------------------------------------------------------ *)

let test_kv_insert_query () =
  let machine, _ = machine_kernel () in
  let cpu = Sky_sim.Machine.core machine 0 in
  let kv = Kv_server.create machine in
  Kv_server.insert kv cpu ~key:(Bytes.of_string "k1") ~value:(Bytes.of_string "v1");
  Kv_server.insert kv cpu ~key:(Bytes.of_string "k2") ~value:(Bytes.of_string "v2");
  (match Kv_server.query kv cpu ~key:(Bytes.of_string "k1") with
  | Some v -> Alcotest.(check string) "value" "v1" (Bytes.to_string v)
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "absent key" true
    (Kv_server.query kv cpu ~key:(Bytes.of_string "nope") = None);
  Alcotest.(check int) "entries" 2 (Kv_server.entries kv)

let test_kv_overwrite () =
  let machine, _ = machine_kernel () in
  let cpu = Sky_sim.Machine.core machine 0 in
  let kv = Kv_server.create machine in
  let key = Bytes.of_string "k" in
  Kv_server.insert kv cpu ~key ~value:(Bytes.of_string "old");
  Kv_server.insert kv cpu ~key ~value:(Bytes.of_string "new");
  Alcotest.(check int) "no duplicate entry" 1 (Kv_server.entries kv);
  match Kv_server.query kv cpu ~key with
  | Some v -> Alcotest.(check string) "latest" "new" (Bytes.to_string v)
  | None -> Alcotest.fail "missing"

let prop_kv_model =
  QCheck.Test.make ~name:"kv store agrees with Hashtbl" ~count:20
    QCheck.(
      list_of_size (Gen.int_range 1 100)
        (pair (string_of_size (Gen.int_range 1 16)) (string_of_size (Gen.int_range 1 32))))
    (fun pairs ->
      let machine, _ = machine_kernel () in
      let cpu = Sky_sim.Machine.core machine 0 in
      let kv = Kv_server.create machine in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          Kv_server.insert kv cpu ~key:(Bytes.of_string k) ~value:(Bytes.of_string v);
          Hashtbl.replace model k v)
        pairs;
      Hashtbl.fold
        (fun k v acc ->
          acc
          &&
          match Kv_server.query kv cpu ~key:(Bytes.of_string k) with
          | Some got -> Bytes.to_string got = v
          | None -> false)
        model true)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let pipeline_of config =
  let _, k = machine_kernel () in
  match config with
  | Pipeline.Skybridge ->
    let sb = Sky_core.Subkernel.init k in
    Pipeline.create ~sb k Pipeline.Skybridge
  | c -> Pipeline.create k c

let test_pipeline_functional configs () =
  (* Every interconnect must produce a working store: queries after
     inserts return decryptable data (exercised by [query] internally —
     a failed decrypt would diverge; here we check op counts and no
     exceptions). *)
  List.iter
    (fun config ->
      let p = pipeline_of config in
      let avg = Pipeline.run p ~core:0 ~ops:40 ~len:64 in
      if avg <= 0 then
        Alcotest.failf "%s: nonpositive latency" (Pipeline.config_name config))
    configs

let test_pipeline_all_configs () =
  test_pipeline_functional
    [ Pipeline.Baseline; Pipeline.Delay; Pipeline.Ipc_local; Pipeline.Ipc_cross;
      Pipeline.Skybridge ]
    ()

let test_fig2_ordering () =
  (* Figure 2 / Figure 8 shape at one size: Baseline < Delay < SkyBridge
     < IPC < IPC-CrossCore. *)
  let lat config =
    let p = pipeline_of config in
    ignore (Pipeline.run p ~core:0 ~ops:30 ~len:64);
    Pipeline.run p ~core:0 ~ops:100 ~len:64
  in
  let base = lat Pipeline.Baseline in
  let delay = lat Pipeline.Delay in
  let sky = lat Pipeline.Skybridge in
  let ipc = lat Pipeline.Ipc_local in
  let cross = lat Pipeline.Ipc_cross in
  let msg = Printf.sprintf "base %d delay %d sky %d ipc %d cross %d" base delay sky ipc cross in
  Alcotest.(check bool) (msg ^ ": base < delay") true (base < delay);
  Alcotest.(check bool) (msg ^ ": base < sky") true (base < sky);
  Alcotest.(check bool) (msg ^ ": sky < ipc") true (sky < ipc);
  Alcotest.(check bool) (msg ^ ": ipc < cross") true (ipc < cross)

let test_latency_grows_with_size () =
  let p = pipeline_of Pipeline.Baseline in
  ignore (Pipeline.run p ~core:0 ~ops:20 ~len:16);
  let small = Pipeline.run p ~core:0 ~ops:50 ~len:16 in
  let large = Pipeline.run p ~core:0 ~ops:50 ~len:1024 in
  Alcotest.(check bool)
    (Printf.sprintf "16B (%d) < 1024B (%d)" small large)
    true (small < large)

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_bounds () =
  let z = Sky_ycsb.Zipf.create ~items:100 (Sky_sim.Rng.create ~seed:3) in
  for _ = 1 to 5000 do
    let v = Sky_ycsb.Zipf.next z in
    if v < 0 || v >= 100 then Alcotest.fail "out of range"
  done

let test_zipf_skew () =
  (* The hottest 10% of items should draw well over 10% of requests. *)
  let z = Sky_ycsb.Zipf.create ~items:1000 (Sky_sim.Rng.create ~seed:11) in
  let hot = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Sky_ycsb.Zipf.next z < 100 then incr hot
  done;
  let frac = float_of_int !hot /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "hot fraction %.2f > 0.4" frac)
    true (frac > 0.4)

let prop_zipf_deterministic =
  QCheck.Test.make ~name:"zipf deterministic per seed" ~count:20 QCheck.small_int
    (fun seed ->
      let a = Sky_ycsb.Zipf.create ~items:50 (Sky_sim.Rng.create ~seed) in
      let b = Sky_ycsb.Zipf.create ~items:50 (Sky_sim.Rng.create ~seed) in
      List.init 100 (fun _ -> Sky_ycsb.Zipf.next a)
      = List.init 100 (fun _ -> Sky_ycsb.Zipf.next b))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "apps"
    [
      ( "rc4",
        [
          Alcotest.test_case "roundtrip" `Quick test_rc4_roundtrip;
          Alcotest.test_case "known vector" `Quick test_rc4_known_vector;
          Alcotest.test_case "cost model" `Quick test_rc4_charges_cycles;
        ] );
      ( "kv_server",
        [
          Alcotest.test_case "insert/query" `Quick test_kv_insert_query;
          Alcotest.test_case "overwrite" `Quick test_kv_overwrite;
        ]
        @ qc [ prop_kv_model ] );
      ( "pipeline",
        [
          Alcotest.test_case "all configs run" `Quick test_pipeline_all_configs;
          Alcotest.test_case "Fig 2/8 ordering" `Quick test_fig2_ordering;
          Alcotest.test_case "latency grows with size" `Quick
            test_latency_grows_with_size;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
        ]
        @ qc [ prop_zipf_deterministic ] );
    ]
