(** The simulated machine: physical memory, frame allocator, cores and the
    shared L3 cache.

    Mirrors the paper's evaluation box (§6.1): an Intel Skylake i7-6700K
    with 4 cores / 8 hardware threads and 16 GiB of RAM — scaled down by
    default to keep the simulation light, but configurable. *)

type t = {
  mem : Sky_mem.Phys_mem.t;
  alloc : Sky_mem.Frame_alloc.t;
  cores : Cpu.t array;
  l3 : Cache.t;
}

val create : ?cores:int -> ?mem_mib:int -> unit -> t
(** Defaults: 8 logical cores (hyper-threading on, as in the paper),
    256 MiB of simulated physical memory. *)

val core : t -> int -> Cpu.t
val n_cores : t -> int

val max_cycles : t -> int
(** The wall clock of the machine: the furthest-ahead core. Used to turn a
    multi-core run into elapsed time. *)

val sync_cores : t -> unit
(** Advance every core to [max_cycles] — a barrier, used between
    experiment phases. *)

(** Result of one scheduling quantum of a core-local run loop. *)
type step =
  | Progress  (** did work; cycles were charged by the step itself *)
  | Idle  (** nothing runnable now; hop this core past the next one *)
  | Idle_until of int
      (** nothing runnable before this cycle (a future RX packet, a
          restart deadline); the loop advances the core's clock there *)
  | Done  (** this core's workload is complete; stop stepping it *)

exception Stuck of string
(** Every live core reported [Idle] repeatedly with no clock movement —
    a lost-wakeup bug in the stepped workload. *)

val interleave : t -> cores:int list -> step:(core:int -> step) -> unit
(** Virtual-time interleaved execution of per-core run loops: repeatedly
    invoke [step] on the live core whose cycle counter is furthest
    behind, until every core reports [Done]. This is how a
    single-threaded simulation runs n cores "concurrently": cross-core
    interactions (IPIs, shared locks, cache contention) happen in
    virtual-time order because the laggard always runs first.
    @raise Stuck when no live core can make progress. *)

type run
(** Persistent state of a resumable interleaved run: which cores are
    still live, plus the deadlock-guard counter (which must survive
    quantum boundaries). *)

val start_run : t -> cores:int list -> run

val run_until :
  t -> run -> step:(core:int -> step) -> until:int -> [ `Paused | `Done ]
(** Advance the run until every live core's clock reaches [until]
    ([`Paused]) or every core reports [Done] ([`Done]). Cores at or past
    [until] are parked, not clamped: a step may overshoot the boundary
    and simply isn't stepped again this quantum, so for any boundary
    placement the step sequence is bit-identical to an unbounded
    {!interleave}. This is the hook the quantum-synchronized parallel
    scheduler drives one simulated-cycle quantum at a time.
    @raise Stuck when no live core can make progress. *)
