(** End-to-end web-serving stack: closed-loop load generator → RSS NIC →
    N skyhttpd workers (one per core) → KV + xv6fs backends, with the
    worker→backend hop over SkyBridge direct calls or the baseline
    kernel's synchronous IPC (the slowpath variant). *)

type transport = Ipc_slowpath | Skybridge

val transport_name : transport -> string

type t

val default_conns : int
val default_requests_per_conn : int
val rtt : int

(** {2 Stack pieces} — shared with the composed service-mesh scenario
    ({!Sky_experiments.Exp_mesh} wires the same backends under a
    different worker/queue topology). *)

val kv_backend :
  Sky_ukernel.Kernel.t -> Sky_kvstore.Kv_server.t -> Sky_kernels.Ipc.handler
(** The KV store's 'I'/'Q' wire handler, closed over a freshly allocated
    instruction working set (so each server generation pollutes the
    caches like a real process would). *)

val binding_of_calls :
  call_kv:(core:int -> bytes -> bytes) ->
  call_fs:(core:int -> bytes -> bytes) ->
  revoke:(core:int -> unit) ->
  rebind:(core:int -> unit) ->
  Httpd.binding
(** Lift raw wire calls into a worker's typed {!Httpd.binding} (the FS
    side goes through {!Sky_xv6fs.Fs_iface.over_call}). *)

val provision_files : Sky_xv6fs.Fs.t -> seed:int -> (string * bytes) array
(** Create the static files the load mix reads (deterministic printable
    contents) through the server-side FS handle; returns name/content
    pairs for the load generator's response validation. *)

val build :
  ?variant:Sky_ukernel.Config.variant ->
  ?seed:int ->
  ?cores:int ->
  ?conns:int ->
  ?requests_per_conn:int ->
  ?mix:Loadgen.mix ->
  ?disk_blocks:int ->
  workers:int ->
  transport:transport ->
  unit ->
  t
(** Builds the machine, kernel, backends (KV store, xv6fs over a RAM
    disk), NIC with [workers] queues, [workers] worker processes bound
    to the backends over [transport], and the load generator.
    SkyBridge workers call through {!Sky_core.Retry.call}, so injected
    backend crashes recover transparently. *)

val run : t -> unit
(** Drive the whole stack by virtual time until every connection has
    been answered. *)

val throughput : t -> float
(** Requests per simulated second, over the busiest worker core's
    elapsed cycles. *)

val elapsed : t -> int
val loadgen : t -> Loadgen.t
val httpd : t -> Httpd.t
val nic : t -> Nic.t
val kernel : t -> Sky_ukernel.Kernel.t
val subkernel : t -> Sky_core.Subkernel.t option

val mesh : t -> Sky_mesh.Mesh.t option
(** The service mesh routing worker→backend calls on the SkyBridge
    path ([kv://], [fs://], [blk://] plus the name service itself). *)

val retry_stats : t -> Sky_core.Retry.stats option

val fs : t -> Sky_xv6fs.Fs.t
(** The mounted xv6fs backend (post-recovery handle on the SkyBridge
    path) — for fsck after a fault storm. *)
