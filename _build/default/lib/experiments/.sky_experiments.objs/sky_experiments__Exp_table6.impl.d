lib/experiments/exp_table6.ml: List Printf Sky_harness Sky_rewriter Tbl
