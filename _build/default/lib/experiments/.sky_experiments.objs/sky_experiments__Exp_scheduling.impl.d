lib/experiments/exp_scheduling.ml: List Printf Scheduler Sky_harness Sky_kernels Sky_sim Tbl
