lib/kernels/costs_table.ml: Sky_sim Sky_ukernel
