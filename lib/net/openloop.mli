(** Open-loop (Poisson-arrival) load generator — the overload
    instrument. Offered load is configured independently of the service
    rate: arrivals fire from a global Poisson process and are spread
    over a tenant fleet that pipelines one request per connection,
    queues overflow client-side, and churns connections every
    [requests_per_conn] requests. Latency is measured arrival→response
    (coordinated-omission-free); responses are classified into goodput
    / shed / unservable / corrupt via {!Workload.classify}.

    Accounting invariant (checked by the overload gates):
    [offered = ok + shed + shed_wire + unservable + corrupt] once
    {!finished}. *)

type t

val create :
  Nic.t ->
  seed:int ->
  mix:Workload.mix ->
  tenants:int ->
  requests_per_conn:int ->
  mean_gap:int ->
  total:int ->
  rtt:int ->
  ?ttl:int ->
  files:(string * bytes) array ->
  keys:(string * bytes) array array ->
  unit ->
  t
(** [mean_gap] is the Poisson process's mean inter-arrival gap in
    cycles; [total] the number of arrivals to offer; [ttl] a relative
    deadline stamped on every request ([Http.with_ttl]). [keys.(i)]
    are tenant [i]'s provisioned warm keys — the caller must have
    inserted them server-side before the run (GETs read only these;
    PUTs write keys never read back, so shedding cannot fake
    corruption). *)

val start : t -> at:int -> unit
(** Install the TX hook and schedule the first arrival at [at]. *)

val step : t -> now:int -> Sky_sim.Machine.step
(** The arrival pump, driven by a dedicated wire-side core: inject all
    arrivals due by [now], then sleep to the next one; [Done] once all
    [total] arrivals have fired. *)

val next_event : t -> int option
(** Next arrival timestamp, if any remain — the {!Httpd} [wire_hint]. *)

val queue_done : t -> queue:int -> bool
val finished : t -> bool

val offered : t -> int
val responses : t -> int

val ok : t -> int
(** Admitted requests answered with the expected body — the goodput. *)

val shed : t -> int
(** Typed 503s: queue-full or deadline-blown load shedding. *)

val shed_wire : t -> int
(** Requests dropped by a full RX ring at injection (the NIC as the
    outermost admission controller). *)

val unservable : t -> int
(** Terminal 403s — denied by every receiver. *)

val corrupt : t -> int
(** Lost, duplicated, or corrupted admitted requests — must be zero. *)

val errors : t -> int
(** [unservable + corrupt]. *)

val churns : t -> int
(** Connections retired and reopened (short-lived connection story). *)

val latencies : t -> Sky_trace.Histogram.t
(** Arrival→response latency of {e goodput} responses only (client-side
    queueing included — no coordinated omission). *)

val tenants : t -> int
