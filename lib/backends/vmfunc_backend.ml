(** The paper's mechanism: user-mode EPTP-list switching (§4).

    A crossing is one VMFUNC(0, idx) through the trampoline page — no
    kernel entry, no TLB flush (translations are tagged by EPTP+VPID).
    Security rests on three pillars the audit enforces: the binary
    rewriter leaves no VMFUNC encoding outside the trampoline (gadget
    pass), the trampoline is the execute-only page whose gates load the
    index from the calling-key check (trampoline pass, [`Vmfunc]
    flavor), and every binding EPT maps exactly the granted windows
    W^X-clean (ept + isoflow passes). Revocation degenerates the EPTP
    slot to the client's own root, so an in-flight or replayed VMFUNC
    lands back in the caller, not the server. *)

let descriptor =
  {
    Descriptor.d_kind = Sky_core.Backend.Vmfunc;
    d_name = "vmfunc";
    d_title = "VMFUNC EPTP-list switching through the trampoline (SkyBridge)";
    d_switch_cycles = Sky_core.Backend.switch_cycles Sky_core.Backend.Vmfunc;
    d_kernel_on_path = false;
    d_tlb_flush_on_switch = false;
    d_shared_address_space = false;
    d_audit_passes = [ "gadget"; "trampoline"; "ept"; "isoflow" ];
    d_invalidation =
      "EPTP slot degenerates to the client's own EPT root (slot positions \
       stay stable); the calling-key entry is zeroed; installed EPTP lists \
       are refreshed";
    d_security =
      "No VMFUNC encoding outside the execute-only trampoline (rewriter + \
       gadget scan); binding EPTs map only granted windows; a forged index \
       lands in a degenerate slot = the caller's own space";
  }
