(** Virtual CPU: a hardware core plus its architectural translation
    state (CR3, PCID, CPL) and — once the Rootkernel has self-virtualized
    the machine — a {!Vmcs}.

    Before virtualization the vCPU runs "on bare metal": guest-physical
    addresses are host-physical addresses and {!Translate} skips the EPT
    stage. *)

type mode = User | Kernel

type t = {
  cpu : Sky_sim.Cpu.t;
  mutable cr3 : int;  (** guest-physical address of the live PML4 *)
  mutable pcid : int;
  mutable mode : mode;
  mutable vmcs : Vmcs.t option;
  mutable pcid_enabled : bool;
      (** When false (the default for the baseline microkernels, matching
          the TLB pollution of Table 1), a CR3 write flushes the TLBs;
          when true entries are tagged and survive. *)
  mutable pkru : int;
      (** Protection-key rights register ({!Pkru}); written only by
          {!Wrpkru.execute} (the MPK isolation backend), no TLB
          interaction. *)
}

val create : ?pcid_enabled:bool -> Sky_sim.Cpu.t -> t
val cpu : t -> Sky_sim.Cpu.t
val virtualized : t -> bool

val vmcs_exn : t -> Vmcs.t
(** Raises [Invalid_argument] when not in non-root mode. *)

val enter_non_root : t -> Vmcs.t -> unit
(** Performed once per core at Rootkernel boot. *)

val asid : t -> int
(** TLB tag composing PCID with the current EPTP {e value} (root frame),
    so that — as with VPID+PCID on real hardware — neither a tagged CR3
    write nor a VMFUNC EPTP switch needs a flush. Value-tagging (rather
    than EPTP-list index) stays sound across EPTP-list slot recycling. *)

val write_cr3 : t -> cr3:int -> pcid:int -> unit
(** Charges {!Sky_sim.Costs.cr3_write}; flushes the TLBs and
    paging-structure caches unless PCID is enabled. *)

val invlpg : t -> va:int -> unit
(** Invalidate one page: leaf-TLB entries under the current ASID plus
    the covering paging-structure-cache entries for every ASID (hardware
    INVLPG semantics). Charges {!Sky_sim.Costs.invlpg}. *)

val set_mode : t -> mode -> unit
