lib/isa/decode.ml: Bytes Char Encode Insn Int64 List Option Reg
