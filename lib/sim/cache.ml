type t = {
  name : string;
  sets : int;
  ways : int;
  line_bytes : int;
  index_shift : int;
  sets_shift : int; (* log2 sets, precomputed: access is the simulator's hottest loop *)
  tags : int array; (* sets * ways; -1 = invalid *)
  stamps : int array; (* LRU timestamps, parallel to [tags] *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~name ~size_bytes ~ways ~line_bytes =
  if not (is_pow2 line_bytes) then invalid_arg "Cache.create: line not pow2";
  if ways <= 0 then invalid_arg "Cache.create: ways <= 0";
  let lines = size_bytes / line_bytes in
  if lines * line_bytes <> size_bytes || lines mod ways <> 0 then
    invalid_arg "Cache.create: geometry does not divide";
  let sets = lines / ways in
  if not (is_pow2 sets) then invalid_arg "Cache.create: sets not pow2";
  {
    name;
    sets;
    ways;
    line_bytes;
    index_shift = log2 line_bytes;
    sets_shift = log2 sets;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let name t = t.name
let sets t = t.sets
let ways t = t.ways
let line_bytes t = t.line_bytes

(* Allocation-free slot search: [-1] for miss. *)
let find_slot t set tag =
  let base = set * t.ways in
  let rec go w =
    if w = t.ways then -1
    else if t.tags.(base + w) = tag then base + w
    else go (w + 1)
  in
  go 0

let access t pa =
  t.clock <- t.clock + 1;
  let line = pa lsr t.index_shift in
  let set = line land (t.sets - 1) in
  let tag = line lsr t.sets_shift in
  let slot = find_slot t set tag in
  if slot >= 0 then begin
    t.stamps.(slot) <- t.clock;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Evict LRU way (or fill an invalid one). *)
    let base = set * t.ways in
    let victim = ref base in
    for w = 1 to t.ways - 1 do
      if t.stamps.(base + w) < t.stamps.(!victim) then victim := base + w
    done;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.clock;
    false
  end

let probe t pa =
  let line = pa lsr t.index_shift in
  find_slot t (line land (t.sets - 1)) (line lsr t.sets_shift) >= 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
