examples/sqlite_ycsb.ml: Array List Printf Sky_experiments Sky_sqldb Sky_ukernel Sky_xv6fs Sky_ycsb Stack Sys
