type kind = Crash | Hang | Revoke | Ept_fault | Drop

type trigger = At_cycle of int | At_hit of int | Every of int | Prob of float

exception Injected of { site : string; kind : kind }

let string_of_kind = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Revoke -> "revoke"
  | Ept_fault -> "ept_fault"
  | Drop -> "drop"

type arm_state = {
  a_kind : kind;
  a_trigger : trigger;
  mutable a_budget : int;
  mutable a_hits : int;
  mutable a_rng : int64;  (** per-arm splitmix64 state *)
}

(* Global singleton, mirroring Sky_trace.Trace: a disabled engine costs
   one ref read per hook and zero simulated cycles. *)
let enabled = ref false
let scope = ref 0
let seed_ref = ref 0
let clock : (int -> int) ref = ref (fun _ -> 0)
let arms : (string, arm_state list ref) Hashtbl.t = Hashtbl.create 16
let fired_log : (string * kind * int) list ref = ref []

(* Same mixer as Sky_sim.Rng (copied: sky_faults sits below sky_sim in
   the dependency order so the sim's hot loop can host fault sites). *)
let sm_next a =
  let open Int64 in
  let s = add a.a_rng 0x9E3779B97F4A7C15L in
  a.a_rng <- s;
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let sm_float a =
  let bits = Int64.to_int (sm_next a) land ((1 lsl 53) - 1) in
  float_of_int bits /. float_of_int (1 lsl 53)

let reset ?(seed = 1) () =
  Hashtbl.reset arms;
  fired_log := [];
  scope := 0;
  seed_ref := seed;
  enabled := true

let disable () = enabled := false
let is_enabled () = !enabled
let set_clock f = clock := f

(* Layers above (e.g. the simulator's host-side hot lines) register
   state to drop whenever a fault scope opens, so runs with the engine
   armed take identical code paths regardless of prior warm-up. *)
let scope_enter_hook : (unit -> unit) ref = ref (fun () -> ())

let on_scope_enter f =
  let prev = !scope_enter_hook in
  scope_enter_hook :=
    fun () ->
      prev ();
      f ()

let enter_scope () =
  if !enabled then !scope_enter_hook ();
  incr scope
let leave_scope () = if !scope > 0 then decr scope
let in_scope () = !scope > 0

let with_scope f =
  enter_scope ();
  Fun.protect ~finally:leave_scope f

let arm ?(budget = 1) ~site ~kind trigger =
  let lst =
    match Hashtbl.find_opt arms site with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace arms site l;
      l
  in
  (* Seed the arm's private stream from (engine seed, site, ordinal) so
     firing schedules do not depend on how other sites interleave. *)
  let ordinal = List.length !lst in
  let a =
    {
      a_kind = kind;
      a_trigger = trigger;
      a_budget = budget;
      a_hits = 0;
      a_rng =
        Int64.of_int (!seed_ref lxor Hashtbl.hash (site, ordinal) lxor 0x5b1d);
    }
  in
  lst := !lst @ [ a ]

let check ?(scoped = false) ~core site =
  if not !enabled then None
  else if scoped && !scope <= 0 then None
  else
    match Hashtbl.find_opt arms site with
    | None -> None
    | Some lst ->
      let now = !clock core in
      let rec go = function
        | [] -> None
        | a :: rest ->
          if a.a_budget <= 0 then go rest
          else begin
            a.a_hits <- a.a_hits + 1;
            let fires =
              match a.a_trigger with
              | At_cycle c -> now >= c
              | At_hit n -> a.a_hits = n
              | Every n -> n > 0 && a.a_hits mod n = 0
              | Prob p -> sm_float a < p
            in
            if fires then begin
              a.a_budget <- a.a_budget - 1;
              fired_log := (site, a.a_kind, now) :: !fired_log;
              Sky_trace.Trace.instant ~core ~cat:"fault" ("fault." ^ site);
              Some a.a_kind
            end
            else go rest
          end
      in
      go !lst

let inject ~core site =
  if !enabled then
    match check ~scoped:true ~core site with
    | Some kind -> raise (Injected { site; kind })
    | None -> ()

let fired () = List.rev !fired_log

let fired_counts () =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (site, _, _) ->
      Hashtbl.replace tbl site
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl site)))
    !fired_log;
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
