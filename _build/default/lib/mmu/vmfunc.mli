(** The VMFUNC instruction (EPTP switching, VM function 0).

    Executable from non-root mode at {e any} privilege level — including
    ring 3, which is the property SkyBridge builds on (§2.2). With VPID
    enabled it does not flush the TLB and costs 134 cycles (Table 2). *)

exception Invalid_vmfunc of { func : int; index : int }
(** An invalid function number, an out-of-range index or an empty EPTP
    slot causes a VM exit (recorded in the VMCS) which the Rootkernel
    turns into a fault for the offending process. *)

val execute : Vcpu.t -> func:int -> index:int -> unit
(** Charge the 134 cycles, validate, switch the current EPTP; flush the
    TLBs iff VPID is disabled. *)
