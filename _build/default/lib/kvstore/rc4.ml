(** RC4 stream cipher — the encryption server's workload.

    Real cipher (so encrypt/decrypt roundtrips are testable), with its
    microarchitectural footprint modelled: the 256-byte S-box lives in a
    guest memory region of the encryption server and is streamed through
    the cache on every message, and the per-byte mixing work is charged
    as compute. *)

let ksa_cycles = 900
let cycles_per_byte = 7

type t = {
  key : bytes;
  sbox_pa : int;  (** guest frame holding the S-box (footprint only) *)
}

let create machine ~key =
  let pa = Sky_mem.Frame_alloc.alloc_frame machine.Sky_sim.Machine.alloc in
  { key = Bytes.of_string key; sbox_pa = pa }

(* Pure RC4: fresh key schedule per message (stateless server calls). *)
let crypt_pure key data =
  let s = Array.init 256 (fun i -> i) in
  let klen = Bytes.length key in
  let j = ref 0 in
  for i = 0 to 255 do
    j := (!j + s.(i) + Char.code (Bytes.get key (i mod klen))) land 0xff;
    let tmp = s.(i) in
    s.(i) <- s.(!j);
    s.(!j) <- tmp
  done;
  let out = Bytes.copy data in
  let i = ref 0 and j = ref 0 in
  for n = 0 to Bytes.length data - 1 do
    i := (!i + 1) land 0xff;
    j := (!j + s.(!i)) land 0xff;
    let tmp = s.(!i) in
    s.(!i) <- s.(!j);
    s.(!j) <- tmp;
    let k = s.((s.(!i) + s.(!j)) land 0xff) in
    Bytes.set out n (Char.chr (Char.code (Bytes.get data n) lxor k))
  done;
  out

let crypt t cpu data =
  Sky_sim.Cpu.charge cpu (ksa_cycles + (cycles_per_byte * Bytes.length data));
  Sky_sim.Memsys.touch_range cpu Sky_sim.Memsys.Data ~pa:t.sbox_pa ~len:256;
  crypt_pure t.key data
