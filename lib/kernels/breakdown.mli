(** Per-category cycle accounting for an IPC path — the stacked-bar
    categories of Figure 7: VMFUNC, SYSCALL/SYSRET, context switch, IPI,
    message copy, schedule, others.

    [walk] is a cross-cutting attribution, not a bar segment: the cycles
    spent inside TLB refills (nested page walks) during the call, read
    as a delta of the PMU walk-cycles accumulator. They are already part
    of whichever measured category they occurred under (copy, ctx,
    other), so [walk] is {e excluded} from {!total}. *)

type t = {
  mutable vmfunc : int;
  mutable syscall : int;
  mutable ctx : int;
  mutable ipi : int;
  mutable copy : int;
  mutable sched : int;
  mutable other : int;
  mutable walk : int;
}

val create : unit -> t

val total : t -> int
(** Sum of the bar segments; [walk] is excluded (see above). *)

val add : t -> t -> unit
(** Accumulate [b] into [a]. *)

val scale : t -> int -> t
(** Per-roundtrip average over [n] calls. *)

val pp : Format.formatter -> t -> unit
