lib/kernels/notification.mli: Sky_ukernel
