(** The whole web-serving stack, assembled end to end:

    load generator → NIC (RSS over [workers] queues) → skyhttpd workers
    (one per core) → KV store + xv6fs/RAM-disk backends, with the
    worker→backend hop carried either by mediated SkyBridge direct calls
    ([Skybridge]) or by the configured baseline kernel's synchronous IPC
    ([Ipc] — the slowpath variant, MT-server so every call at least
    takes the kernel's local path).

    Worker [i] is pinned to core [i]; backend handlers run on the
    calling worker's core in the server's address space, exactly as a
    direct server call (or local IPC) executes them. All worker calls go
    through {!Sky_core.Retry.call} on the SkyBridge path, so backend
    crashes injected by the chaos experiment recover transparently.

    Two front ends share the assembly:

    - {!build} — the classic closed-loop stack ({!Loadgen});
    - {!build_open} — the {b overload} stack: an {!Openloop}
      Poisson-arrival generator driven by a dedicated wire-side pump
      core, admission control on the server ({!Httpd.admission}),
      request TTLs propagated as backend call timeouts, an optional
      {!Sky_core.Retry.budget} bounding recovery retries, and a
      per-tenant keyspace provisioned server-side so load shedding can
      never masquerade as corruption. *)

open Sky_sim
open Sky_ukernel
open Sky_blockdev
open Sky_xv6fs
module Kv_server = Sky_kvstore.Kv_server
module Subkernel = Sky_core.Subkernel
module Retry = Sky_core.Retry
module Ipc = Sky_kernels.Ipc
module Mesh = Sky_mesh.Mesh

type transport = Ipc_slowpath | Skybridge

let transport_name = function
  | Ipc_slowpath -> "slowpath-IPC"
  | Skybridge -> "SkyBridge"

let default_conns = 120
let default_requests_per_conn = 8
let rtt = 2_000 (* wire round trip: client is "one switch away" *)
let n_files = 4
let file_bytes = 192
let backend_text = 6 * 1024 (* KV server instruction working set *)

type t = {
  machine : Machine.t;
  kernel : Kernel.t;
  transport : transport;
  workers : int;
  nic : Nic.t;
  httpd : Httpd.t;
  lg : Loadgen.t;
  sb : Subkernel.t option;
  mesh : Mesh.t option;
  rstats : Retry.stats option;
  fs_cell : Fs.t ref;
  kv : Kv_server.t;
  wprocs : Proc.t array;
  mutable elapsed : int;  (** busiest worker core's cycles across {!run} *)
}

(* ---- KV wire format (the store's own 'I'/'Q'/'B' protocol) ---- *)

let kv_insert_msg ~key ~value =
  let kb = Bytes.of_string key in
  let b = Bytes.create (4 + Bytes.length kb + Bytes.length value) in
  Bytes.set b 0 'I';
  Bytes.set_uint16_le b 2 (Bytes.length kb);
  Bytes.blit kb 0 b 4 (Bytes.length kb);
  Bytes.blit value 0 b (4 + Bytes.length kb) (Bytes.length value);
  b

let kv_query_msg ~key =
  let kb = Bytes.of_string key in
  let b = Bytes.create (4 + Bytes.length kb) in
  Bytes.set b 0 'Q';
  Bytes.set_uint16_le b 2 (Bytes.length kb);
  Bytes.blit kb 0 b 4 (Bytes.length kb);
  b

(* 'B': [count:u16] then per op 'I'[klen:u16][vlen:u16]key value or
   'Q'[klen:u16]key — a whole request batch in one server crossing. The
   reply mirrors it: [count:u16] then 's' (stored), 'm' (miss) or
   'v'[len:u16]bytes per op, in order. *)
let kv_batch_msg ops =
  let size =
    List.fold_left
      (fun a op ->
        a
        +
        match op with
        | Httpd.Op_put (k, v) -> 5 + String.length k + Bytes.length v
        | Httpd.Op_get k -> 3 + String.length k)
      4 ops
  in
  let b = Bytes.create size in
  Bytes.set b 0 'B';
  Bytes.set b 1 '\000';
  Bytes.set_uint16_le b 2 (List.length ops);
  let off = ref 4 in
  List.iter
    (fun op ->
      match op with
      | Httpd.Op_put (k, v) ->
        Bytes.set b !off 'I';
        Bytes.set_uint16_le b (!off + 1) (String.length k);
        Bytes.set_uint16_le b (!off + 3) (Bytes.length v);
        Bytes.blit_string k 0 b (!off + 5) (String.length k);
        Bytes.blit v 0 b (!off + 5 + String.length k) (Bytes.length v);
        off := !off + 5 + String.length k + Bytes.length v
      | Httpd.Op_get k ->
        Bytes.set b !off 'Q';
        Bytes.set_uint16_le b (!off + 1) (String.length k);
        Bytes.blit_string k 0 b (!off + 3) (String.length k);
        off := !off + 3 + String.length k)
    ops;
  b

let kv_batch_replies resp =
  let count = Bytes.get_uint16_le resp 0 in
  let off = ref 2 in
  List.init count (fun _ ->
      match Bytes.get resp !off with
      | 's' ->
        incr off;
        Httpd.R_stored true
      | 'f' ->
        incr off;
        Httpd.R_stored false
      | 'm' ->
        incr off;
        Httpd.R_value None
      | 'v' ->
        let len = Bytes.get_uint16_le resp (!off + 1) in
        let v = Bytes.sub resp (!off + 3) len in
        off := !off + 3 + len;
        Httpd.R_value (Some v)
      | c -> invalid_arg (Printf.sprintf "web kv_batch_replies: tag %c" c))

let kv_handler kv kernel ~text_pa : Ipc.handler =
 fun ~core msg ->
  let cpu = Kernel.cpu kernel ~core in
  Memsys.touch_range_state_only cpu Memsys.Insn ~pa:text_pa ~len:backend_text;
  match Bytes.get msg 0 with
  | 'I' ->
    let klen = Bytes.get_uint16_le msg 2 in
    let key = Bytes.sub msg 4 klen in
    let value = Bytes.sub msg (4 + klen) (Bytes.length msg - 4 - klen) in
    Kv_server.insert kv cpu ~key ~value;
    Bytes.of_string "ok"
  | 'Q' -> (
    let klen = Bytes.get_uint16_le msg 2 in
    let key = Bytes.sub msg 4 klen in
    match Kv_server.query kv cpu ~key with Some v -> v | None -> Bytes.empty)
  | 'B' ->
    (* One crossing, many operations: the store pays per-op cache
       footprint as usual, but the SkyBridge/IPC transit is amortized. *)
    let count = Bytes.get_uint16_le msg 2 in
    let off = ref 4 in
    let parts =
      List.init count (fun _ ->
          match Bytes.get msg !off with
          | 'I' ->
            let klen = Bytes.get_uint16_le msg (!off + 1) in
            let vlen = Bytes.get_uint16_le msg (!off + 3) in
            let key = Bytes.sub msg (!off + 5) klen in
            let value = Bytes.sub msg (!off + 5 + klen) vlen in
            off := !off + 5 + klen + vlen;
            Kv_server.insert kv cpu ~key ~value;
            Bytes.of_string "s"
          | 'Q' -> (
            let klen = Bytes.get_uint16_le msg (!off + 1) in
            let key = Bytes.sub msg (!off + 3) klen in
            off := !off + 3 + klen;
            match Kv_server.query kv cpu ~key with
            | Some v ->
              let r = Bytes.create (3 + Bytes.length v) in
              Bytes.set r 0 'v';
              Bytes.set_uint16_le r 1 (Bytes.length v);
              Bytes.blit v 0 r 3 (Bytes.length v);
              r
            | None -> Bytes.of_string "m")
          | c -> invalid_arg (Printf.sprintf "web kv_handler: batch op %c" c))
    in
    let head = Bytes.create 2 in
    Bytes.set_uint16_le head 0 count;
    Bytes.concat Bytes.empty (head :: parts)
  | c -> invalid_arg (Printf.sprintf "web kv_handler: opcode %c" c)

(* Allocate the KV server's instruction working set and close the wire
   handler over it — shared with the composed mesh scenario, which runs
   two KV server generations over the same store. *)
let kv_backend kernel kv =
  let text_pa =
    Sky_mem.Frame_alloc.alloc_frames (Kernel.alloc kernel)
      ~count:((backend_text + 4095) / 4096)
  in
  kv_handler kv kernel ~text_pa

(* ---- typed worker bindings over either transport ---- *)

let fs_read_of iface ~core ~name =
  match iface.Fs_iface.lookup ~core name with
  | None -> None
  | Some inum ->
    let len = iface.Fs_iface.size ~core inum in
    Some (iface.Fs_iface.read ~core ~inum ~off:0 ~len)

let binding_of_calls ?(batch = false) ~call_kv ~call_fs ~revoke ~rebind () =
  let iface = Fs_iface.over_call call_fs in
  {
    Httpd.kv_put =
      (fun ~core ~key ~value ->
        Bytes.to_string (call_kv ~core (kv_insert_msg ~key ~value)) = "ok");
    kv_get =
      (fun ~core ~key ->
        let r = call_kv ~core (kv_query_msg ~key) in
        if Bytes.length r = 0 then None else Some r);
    fs_read = (fun ~core ~name -> fs_read_of iface ~core ~name);
    kv_batch =
      (if batch then
         Some (fun ~core ops -> kv_batch_replies (call_kv ~core (kv_batch_msg ops)))
       else None);
    revoke;
    rebind;
  }

(* Provision the FS objects the load mix reads: deterministic printable
   contents, written through the server-side handle before the run. *)
let provision_files fs ~seed =
  let rng = Rng.create ~seed:(seed lxor 0xf11e5) in
  Array.init n_files (fun i ->
      let name = Printf.sprintf "web%d.html" i in
      let data = Bytes.create file_bytes in
      let head = Printf.sprintf "<html>%d:" i in
      Bytes.iteri
        (fun j _ ->
          if j < String.length head then Bytes.set data j head.[j]
          else Bytes.set data j (Char.chr (97 + Rng.int rng 26)))
        data;
      let inum = Fs.create fs ~core:0 name in
      Fs.write fs ~core:0 ~inum ~off:0 data;
      (name, data))

(* Per-tenant warm keyspace for the open-loop generator: GETs under
   shedding read only these, so a shed PUT can never make a later read
   look corrupt. *)
let tenant_keys ~seed ~tenants ~keys_per_tenant =
  let rng = Rng.create ~seed:(seed lxor 0x7e4a47) in
  Array.init tenants (fun ti ->
      Array.init keys_per_tenant (fun ki ->
          (Printf.sprintf "t%d-p%d" ti ki, Workload.value_bytes rng (ti * 131) ki)))

(* ---- shared assembly: backends + transport + worker bindings ---- *)

type stack = {
  st_machine : Machine.t;
  st_kernel : Kernel.t;
  st_kv : Kv_server.t;
  st_fs_cell : Fs.t ref;
  st_sb : Subkernel.t option;
  st_mesh : Mesh.t option;
  st_rstats : Retry.stats option;
  st_worker_procs : Proc.t array;
  st_bind : batch:bool -> Proc.t -> Httpd.binding;
  st_deadline : (core:int -> int option) ref;
      (** set to the httpd's {!Httpd.current_deadline} once it exists;
          the SkyBridge bindings read it to propagate the remaining
          request budget as a backend call timeout *)
}

let assemble ~variant ~seed ~cores ~disk_blocks ?max_eptp ?max_bindings
    ?retry_budget ~workers ~transport () =
  if workers < 1 || workers > cores then
    invalid_arg "Web.build: workers must be in [1, cores]";
  let machine = Machine.create ~cores ~mem_mib:128 () in
  let kernel = Kernel.create ~config:(Config.default variant) machine in
  (* Backends: KV store + xv6fs over a RAM disk. *)
  let kv = Kv_server.create machine in
  let kv_h = kv_backend kernel kv in
  let ramdisk = Ramdisk.create machine ~nblocks:disk_blocks in
  let raw = Disk.direct kernel ramdisk in
  Fs.mkfs kernel raw ~core:0 ~size:disk_blocks ~ninodes:64 ();
  let kv_proc = Kernel.spawn kernel ~name:"kvstore" in
  let fs_proc = Kernel.spawn kernel ~name:"xv6fs" in
  let disk_proc = Kernel.spawn kernel ~name:"blockdev" in
  let worker_procs = Array.init workers (fun _ -> Kernel.spawn kernel ~name:"httpd") in
  let deadline =
    ref (fun ~core ->
        ignore core;
        None)
  in
  let sb, mesh, rstats, fs_cell, bind =
    match transport with
    | Skybridge ->
      let sb = Subkernel.init ?max_eptp ?max_bindings ~seed kernel in
      (* URI addressing through the mesh: servers register under their
         scheme, workers are granted capabilities and call by URI — no
         flat sid plumbing reaches the worker bindings. *)
      let mesh = Mesh.create ~seed ?retry_budget sb in
      let disk_sid =
        Subkernel.register_server sb disk_proc ~connection_count:cores
          (Disk.handler kernel ramdisk)
      in
      Mesh.register mesh ~core:0 ~uri:"blk://" ~server_id:disk_sid;
      ignore (Mesh.grant mesh ~core:0 ~client:fs_proc "blk://");
      let sdisk = Disk.over_skybridge sb ~client:fs_proc ~server_id:disk_sid in
      let fs_cell = ref (Fs.mount kernel sdisk ~core:0) in
      (* Handler indirection so a crash-recovery remount swaps the Fs.t
         without re-registering the server (same trick as the SQLite
         stack). *)
      let fs_handler ~core msg = Fs_iface.server_handler !fs_cell ~core msg in
      let fs_sid =
        Subkernel.register_server sb fs_proc ~connection_count:cores
          ~deps:[ disk_sid ] fs_handler
      in
      let kv_sid = Subkernel.register_server sb kv_proc ~connection_count:cores kv_h in
      Mesh.register mesh ~core:0 ~uri:"fs://" ~server_id:fs_sid;
      Mesh.register mesh ~core:0 ~uri:"kv://" ~server_id:kv_sid;
      let rstats = Mesh.retry_stats mesh in
      let remount () =
        let rec go n =
          try fs_cell := Fs.mount kernel sdisk ~core:0 with
          | Subkernel.Server_crashed { server_id } when n > 0 ->
            Subkernel.restart_server sb ~server_id;
            go (n - 1)
        in
        go 3
      in
      let bind ~batch w_proc =
        ignore (Mesh.grant mesh ~core:0 ~client:w_proc "kv://");
        ignore (Mesh.grant mesh ~core:0 ~client:w_proc "fs://");
        (* The routed call: deadline-aware (the live request's remaining
           budget becomes the backend timeout; an exhausted budget sheds
           as 503 via [Httpd.Expired]) and denial-aware (a revoked
           capability bounces the request to a privileged peer via
           [Httpd.Denied] instead of killing the worker). *)
        let routed ?on_crash uri ~core msg =
          let timeout =
            match !deadline ~core with
            | None -> None
            | Some d ->
              let now = Cpu.cycles (Kernel.cpu kernel ~core) in
              if d <= now then raise Httpd.Expired else Some (d - now)
          in
          match Mesh.call mesh ~core ~client:w_proc ?on_crash ?timeout uri msg with
          | Ok r -> r
          | Error (`Denied _) -> raise Httpd.Denied
          | Error (`Unresolved u) -> raise (Mesh.Unknown_service u)
          | Error (`Failed e) ->
            if timeout <> None then raise Httpd.Expired
            else raise (Retry.Gave_up e)
        in
        binding_of_calls ~batch
          ~call_kv:(routed "kv://")
          ~call_fs:(routed ~on_crash:(fun _ -> remount ()) "fs://")
          ~revoke:(fun ~core -> Mesh.suspend_client mesh ~core w_proc)
          ~rebind:(fun ~core ->
            ignore core;
            Mesh.resume_client mesh w_proc)
          ()
      in
      (Some sb, Some mesh, Some rstats, fs_cell, bind)
    | Ipc_slowpath ->
      let ipc = Ipc.create kernel in
      let disk_ep =
        Ipc.register ipc disk_proc ~cores:[] (Disk.handler kernel ramdisk)
      in
      let fs = Fs.mount kernel (Disk.over_ipc ipc ~client:fs_proc disk_ep) ~core:0 in
      let fs_ep = Ipc.register ipc fs_proc ~cores:[] (Fs_iface.server_handler fs) in
      let kv_ep = Ipc.register ipc kv_proc ~cores:[] kv_h in
      let bind ~batch w_proc =
        let call_kv ~core msg = Ipc.call ipc ~core ~client:w_proc kv_ep msg in
        let call_fs ~core msg = Ipc.call ipc ~core ~client:w_proc fs_ep msg in
        binding_of_calls ~batch ~call_kv ~call_fs
          ~revoke:(fun ~core -> ignore core)
          ~rebind:(fun ~core -> ignore core)
          ()
      in
      (None, None, None, ref fs, bind)
  in
  {
    st_machine = machine;
    st_kernel = kernel;
    st_kv = kv;
    st_fs_cell = fs_cell;
    st_sb = sb;
    st_mesh = mesh;
    st_rstats = rstats;
    st_worker_procs = worker_procs;
    st_bind = bind;
    st_deadline = deadline;
  }

(* ---- closed-loop front end ---- *)

let build ?(variant = Config.Sel4) ?(seed = 42) ?(cores = 8)
    ?(conns = default_conns) ?(requests_per_conn = default_requests_per_conn)
    ?(mix = Loadgen.default_mix) ?(disk_blocks = 4096) ~workers ~transport () =
  let st = assemble ~variant ~seed ~cores ~disk_blocks ~workers ~transport () in
  let files = provision_files !(st.st_fs_cell) ~seed in
  let nic = Nic.create st.st_kernel ~queues:workers in
  let lg = Loadgen.create nic ~seed ~mix ~conns ~requests_per_conn ~rtt ~files in
  let httpd =
    Httpd.create st.st_kernel nic
      ~preload:(Array.to_list (Array.map fst files))
      ~workers:(Array.map (fun p -> (p, st.st_bind ~batch:false p)) st.st_worker_procs)
      ~queue_done:(fun ~queue -> Loadgen.queue_done lg ~queue)
  in
  st.st_deadline := (fun ~core -> Httpd.current_deadline httpd ~core);
  {
    machine = st.st_machine;
    kernel = st.st_kernel;
    transport;
    workers;
    nic;
    httpd;
    lg;
    sb = st.st_sb;
    mesh = st.st_mesh;
    rstats = st.st_rstats;
    fs_cell = st.st_fs_cell;
    kv = st.st_kv;
    wprocs = st.st_worker_procs;
    elapsed = 0;
  }

(* Resumable run, for the quantum scheduler: [start_run] arms the load
   generator, [advance] drives a bounded slice of virtual time, and the
   elapsed figure is computed when the workload drains. *)
type session = { s_start : int; s_httpd : Httpd.session }

let start_run t =
  Machine.sync_cores t.machine;
  let start = Cpu.cycles (Machine.core t.machine 0) in
  Loadgen.start t.lg ~at:(start + 500);
  { s_start = start; s_httpd = Httpd.start t.httpd }

let advance t s ~until =
  match Httpd.advance t.httpd s.s_httpd ~until with
  | `Paused -> `Paused
  | `Done ->
    let elapsed = ref 1 in
    for core = 0 to t.workers - 1 do
      let c = Cpu.cycles (Machine.core t.machine core) - s.s_start in
      if c > !elapsed then elapsed := c
    done;
    t.elapsed <- !elapsed;
    `Done

let run t =
  let s = start_run t in
  match advance t s ~until:max_int with
  | `Done -> ()
  | `Paused -> assert false (* clocks cannot reach max_int *)

let throughput t =
  Costs.ops_per_sec ~ops:(Loadgen.responses t.lg) ~cycles:(max 1 t.elapsed)

let elapsed t = t.elapsed
let loadgen t = t.lg
let httpd t = t.httpd
let nic t = t.nic
let kernel t = t.kernel
let subkernel t = t.sb
let mesh t = t.mesh
let retry_stats t = t.rstats
let fs t = !(t.fs_cell)
let worker_procs t = t.wprocs

(* ---- open-loop (overload) front end ---- *)

type open_t = {
  o_machine : Machine.t;
  o_kernel : Kernel.t;
  o_transport : transport;
  o_workers : int;
  o_nic : Nic.t;
  o_httpd : Httpd.t;
  o_ol : Openloop.t;
  o_sb : Subkernel.t option;
  o_mesh : Mesh.t option;
  o_rstats : Retry.stats option;
  o_budget : Retry.budget option;
  o_worker_procs : Proc.t array;
  o_fs_cell : Fs.t ref;
  mutable o_elapsed : int;
}

let build_open ?(variant = Config.Sel4) ?(seed = 42)
    ?(requests_per_conn = default_requests_per_conn)
    ?(mix = Loadgen.default_mix) ?(disk_blocks = 4096) ?max_eptp ?max_bindings
    ?(retry_budget = true) ?(admission = Httpd.no_admission) ?ttl
    ?(keys_per_tenant = 4) ~tenants ~mean_gap ~total ~workers ~transport () =
  (* One extra core: the wire-side arrival pump. *)
  let cores = workers + 1 in
  let budget = if retry_budget then Some (Retry.budget ~seed ()) else None in
  let st =
    assemble ~variant ~seed ~cores ~disk_blocks ?max_eptp ?max_bindings
      ?retry_budget:budget ~workers ~transport ()
  in
  let files = provision_files !(st.st_fs_cell) ~seed in
  (* Warm the per-tenant keyspace server-side before any traffic: the
     open-loop read path touches only provisioned keys. *)
  let keys = tenant_keys ~seed ~tenants ~keys_per_tenant in
  let cpu0 = Kernel.cpu st.st_kernel ~core:0 in
  Array.iter
    (Array.iter (fun (k, v) ->
         Kv_server.insert st.st_kv cpu0 ~key:(Bytes.of_string k) ~value:v))
    keys;
  let nic = Nic.create st.st_kernel ~queues:workers in
  let ol =
    Openloop.create nic ~seed ~mix ~tenants ~requests_per_conn ~mean_gap ~total
      ~rtt ?ttl ~files ~keys ()
  in
  let httpd =
    Httpd.create st.st_kernel nic
      ~preload:(Array.to_list (Array.map fst files))
      ~admission
      ~wire_hint:(fun () -> Openloop.next_event ol)
      ~workers:
        (Array.map
           (fun p -> (p, st.st_bind ~batch:(admission.Httpd.a_batch_max > 1) p))
           st.st_worker_procs)
      ~queue_done:(fun ~queue -> Openloop.queue_done ol ~queue)
  in
  st.st_deadline := (fun ~core -> Httpd.current_deadline httpd ~core);
  {
    o_machine = st.st_machine;
    o_kernel = st.st_kernel;
    o_transport = transport;
    o_workers = workers;
    o_nic = nic;
    o_httpd = httpd;
    o_ol = ol;
    o_sb = st.st_sb;
    o_mesh = st.st_mesh;
    o_rstats = st.st_rstats;
    o_budget = budget;
    o_worker_procs = st.st_worker_procs;
    o_fs_cell = st.st_fs_cell;
    o_elapsed = 0;
  }

let run_open o =
  Machine.sync_cores o.o_machine;
  let start = Cpu.cycles (Machine.core o.o_machine 0) in
  Openloop.start o.o_ol ~at:(start + 500);
  Machine.interleave o.o_machine
    ~cores:(List.init (o.o_workers + 1) Fun.id)
    ~step:(fun ~core ->
      if core < o.o_workers then Httpd.step o.o_httpd ~core
      else Openloop.step o.o_ol ~now:(Cpu.cycles (Machine.core o.o_machine core)));
  let elapsed = ref 1 in
  for core = 0 to o.o_workers - 1 do
    let c = Cpu.cycles (Machine.core o.o_machine core) - start in
    if c > !elapsed then elapsed := c
  done;
  o.o_elapsed <- !elapsed
