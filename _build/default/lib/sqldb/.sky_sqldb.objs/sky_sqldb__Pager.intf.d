lib/sqldb/pager.mli: Sky_ukernel Sky_xv6fs
