(** Scanning executable bytes for VMFUNC encodings (§5.2).

    A VMFUNC is the byte sequence [0F 01 D4]. It can appear as an actual
    instruction (C1), spanning the boundary of two or more instructions
    (C2), or embedded in the ModRM/SIB/displacement/immediate fields of a
    longer instruction (C3). The scanner decodes from the start of the
    buffer, bookkeeping instruction boundaries to classify each
    occurrence. *)

type field = In_modrm | In_sib | In_disp | In_imm | In_opcode

type case =
  | C1_vmfunc  (** the instruction {e is} VMFUNC *)
  | C2_spanning  (** the pattern crosses an instruction boundary *)
  | C3_embedded of field  (** inside one longer instruction *)

type occurrence = {
  at : int;  (** byte offset of the 0F *)
  case : case;
  span : Sky_isa.Decode.decoded list;
      (** the instruction(s) whose bytes contain the pattern, in order *)
}

val vmfunc_bytes : bytes
(** [0F 01 D4]. *)

val wrpkru_bytes : bytes
(** [0F 01 EF] — the WRPKRU encoding the MPK backend's binary audit
    hunts for, exactly as ERIM's inspection pass does. *)

val find_bytes : pattern:bytes -> bytes -> int list
(** All byte offsets where [pattern] occurs, boundary-oblivious. *)

val find_pattern : ?pattern:bytes -> bytes -> int list
(** [find_bytes] defaulting to {!vmfunc_bytes}. *)

val find_wrpkru : bytes -> int list
(** [find_bytes ~pattern:wrpkru_bytes]. *)

val count_pattern : bytes -> int

val find_pattern_chunked : ?pattern:bytes -> (int * bytes) list -> int list
(** [find_pattern_chunked chunks] scans [(global_offset, bytes)] pieces of
    a region in increasing-offset order, carrying a [len-1]-byte overlap
    across contiguous chunk boundaries so a pattern split across two
    chunks is still found. A gap between chunks resets the carry. Returns
    sorted global offsets. *)

val find_pattern_paged : ?page_size:int -> ?pattern:bytes -> bytes -> int list
(** [find_bytes] with the buffer scanned page by page (default 4096) —
    the shape a per-page audit sees; equivalent to the contiguous scan. *)

val scan : ?pattern:bytes -> bytes -> occurrence list
(** Classified occurrences, in increasing [at] order. [C1_vmfunc] means
    "the covering instruction {e is} the mechanism instruction" for
    whichever pattern is being scanned. *)

val field_name : field -> string
val case_name : case -> string
