test/test_mem_sim.mli:
