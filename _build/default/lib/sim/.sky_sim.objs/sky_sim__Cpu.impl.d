lib/sim/cpu.ml: Cache Pmu Printf Tlb
