lib/mmu/vmfunc.ml: Sky_sim Vcpu Vmcs
