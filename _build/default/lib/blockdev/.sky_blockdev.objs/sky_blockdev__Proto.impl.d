lib/blockdev/proto.ml: Bytes Char Int32 Printf Ramdisk
