(** A user process: its page table, address-space bookkeeping and the
    record of its executable regions (which the SkyBridge rewriter scans
    at registration). *)

type t = {
  pid : int;
  name : string;
  page_table : Sky_mmu.Page_table.t;
  mutable next_heap_va : int;
  mutable next_stack_va : int;
  mutable code : (int * bytes) list;  (** (va, original bytes) regions *)
  mutable identity_frame : int;
      (** PA of the §4.2 identity page (0 before {!Kernel.spawn} fills it) *)
}

val create : pid:int -> name:string -> page_table:Sky_mmu.Page_table.t -> t

val cr3 : t -> int
(** The process's CR3 value — the GPA whose remapping in a server EPT is
    the §4.3 trick. *)

val bump_heap : t -> int -> int
(** Reserve [len] bytes of heap VA space (page-rounded); returns the VA. *)

val bump_stack : t -> int -> int
(** Carve a stack slot below the previous one, leaving a guard page;
    returns the {e base} (lowest VA) of the slot. *)
