(** B+tree over the pager: integer keys, fixed-size values, chained
    leaves for in-order scans.

    Page 0 of the table file is the header (magic, root page, value
    size, record count); every other page is an internal node or a
    leaf. Deletion is lazy (no rebalancing). Model-tested against
    [Hashtbl] in test/test_sqldb.ml. *)

type t

exception Corrupt of string

val create : Pager.t -> core:int -> value_size:int -> t
(** Initialize a fresh table (header + one empty leaf) in an empty file.
    [value_size] must be in (0, 512]. *)

val open_ : Pager.t -> core:int -> t
(** Load an existing table; raises {!Corrupt} on a bad header. *)

val insert : t -> core:int -> key:int -> value:bytes -> unit
(** Insert or overwrite. Values shorter than [value_size] are
    zero-padded; longer ones are truncated. *)

val update : t -> core:int -> key:int -> value:bytes -> bool
(** False when the key is absent (no insertion). *)

val query : t -> core:int -> int -> bytes option
(** The stored (padded) value. *)

val mem : t -> core:int -> int -> bool
val delete : t -> core:int -> key:int -> bool

val count : t -> int
(** Records currently stored (held in memory between {!flush}es). *)

val flush : t -> core:int -> unit
(** Persist the header (root + count). *)

val fold : t -> core:int -> ('a -> int -> bytes -> 'a) -> 'a -> 'a
(** In key order, via the leaf chain. *)

val keys : t -> core:int -> int list

val find_leaf : t -> core:int -> int -> int list * int * bytes
(** [find_leaf t ~core key] = (internal-page path, leaf page number,
    leaf contents) — exposed so the DB layer can journal the page a
    statement is about to dirty. *)
