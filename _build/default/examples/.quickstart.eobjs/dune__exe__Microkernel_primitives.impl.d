examples/microkernel_primitives.ml: Bytes Capability Ipc Kernel List Notification Printf Scheduler Sky_kernels Sky_sim Sky_ukernel
