(** Run-queue policies from the paper's §8.1 discussion.

    "Lazy scheduling avoids the frequent queue manipulation, but does not
    guarantee the bounded execution time of the scheduler, which is
    required by some hard real-time systems. Hence, seL4 proposes Benno
    scheduling to address such problem."

    - [Lazy_scheduling] (Liedtke): blocking a thread leaves it in the run
      queue; the IPC path never touches the queue, but [pick] must skip
      over stale blocked entries — unbounded work in the worst case.
    - [Benno]: the queue holds only runnable-but-not-running threads, so
      [pick] is O(1); the IPC fastpath's direct process switch never
      enqueues at all. *)

type policy = Lazy_scheduling | Benno

val policy_name : policy -> string

type thread

val tid : thread -> int
val runnable : thread -> bool

type t

val create : policy -> t

val spawn_thread : t -> tid:int -> thread
(** New runnable thread, appended to the queue. *)

val block : t -> Sky_sim.Cpu.t -> thread -> unit
(** IPC send/receive blocking. Benno dequeues (charged); Lazy just flips
    the flag. *)

val wake : t -> Sky_sim.Cpu.t -> thread -> unit
(** Benno enqueues (charged); Lazy flips the flag (re-enqueueing only if
    the entry was garbage-collected by a previous pick). *)

val pick : t -> Sky_sim.Cpu.t -> thread option
(** Next runnable thread, removed from the queue. Lazy pops and discards
    blocked entries on the way (charging per examined entry) — the
    unbounded part. *)

val direct_switch : t -> Sky_sim.Cpu.t -> from_thread:thread -> to_thread:thread -> unit
(** The seL4 fastpath's direct process switch: control moves to the
    receiver without consulting the queue at all (the sender blocks, the
    receiver was blocked waiting). Under Benno this touches nothing. *)

val queue_length : t -> int
val examined : t -> int
(** Total queue entries looked at by [pick] — the §8.1 boundedness
    metric. *)

val queue_ops : t -> int
(** Enqueues + dequeues performed. *)
