lib/kvstore/pipeline.mli: Sky_core Sky_kernels Sky_ukernel
