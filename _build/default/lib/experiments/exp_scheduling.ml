(** Extension (§8.1): lazy vs Benno scheduling.

    An adversarial-but-realistic churn pattern — interrupt-driven servers
    waking and immediately blocking again between scheduler invocations —
    shows why seL4 moved to Benno scheduling: the lazy queue accumulates
    stale blocked entries that [pick] must wade through, so its
    per-invocation cost is unbounded, while Benno's stays O(1). *)

open Sky_kernels
open Sky_harness

type run = {
  picks : int;
  total_examined : int;
  worst_pick : int;
  queue_ops : int;
  cycles : int;
}

let churn policy ~servers ~rounds =
  let machine = Sky_sim.Machine.create ~cores:1 ~mem_mib:16 () in
  let cpu = Sky_sim.Machine.core machine 0 in
  let s = Scheduler.create policy in
  let threads = List.init servers (fun i -> Scheduler.spawn_thread s ~tid:i) in
  (* Initially everyone blocks waiting for work. *)
  List.iter (fun th -> Scheduler.block s cpu th) threads;
  let picks = ref 0 and worst = ref 0 in
  (* The thread that stays runnable is the one the previous pick just ran
     (and re-blocked): its queue entry is the youngest, so under lazy
     scheduling every stale entry sits in front of it. *)
  let chosen = List.nth threads (servers - 1) in
  let t0 = Sky_sim.Cpu.cycles cpu in
  for _round = 1 to rounds do
    (* A burst of interrupts wakes every server... *)
    List.iter (fun th -> Scheduler.wake s cpu th) threads;
    (* ...but all except one find their condition already consumed and
       block again before the scheduler runs (the lazy-scheduling
       pathology: the queue now holds stale entries). *)
    List.iter (fun th -> if th != chosen then Scheduler.block s cpu th) threads;
    let before = Scheduler.examined s in
    (match Scheduler.pick s cpu with
    | Some th ->
      incr picks;
      Scheduler.block s cpu th
    | None -> ());
    worst := max !worst (Scheduler.examined s - before)
  done;
  {
    picks = !picks;
    total_examined = Scheduler.examined s;
    worst_pick = !worst;
    queue_ops = Scheduler.queue_ops s;
    cycles = Sky_sim.Cpu.cycles cpu - t0;
  }

let run () =
  let servers = 32 and rounds = 200 in
  let lazy_run = churn Scheduler.Lazy_scheduling ~servers ~rounds in
  let benno = churn Scheduler.Benno ~servers ~rounds in
  let row name (r : run) =
    [
      name;
      Tbl.fmt_int r.picks;
      Tbl.fmt_int r.total_examined;
      Tbl.fmt_int r.worst_pick;
      Tbl.fmt_int r.queue_ops;
      Tbl.fmt_int r.cycles;
    ]
  in
  Tbl.make
    ~title:
      (Printf.sprintf
         "Extension (SS8.1): lazy vs Benno scheduling (%d servers, %d \
          interrupt rounds)"
         servers rounds)
    ~header:
      [ "policy"; "picks"; "entries examined"; "worst single pick"; "queue ops";
        "cycles" ]
    ~notes:
      [
        "lazy scheduling defers queue maintenance but pays for it inside \
         the scheduler — the worst-case pick walks the whole stale queue, \
         which is what seL4's Benno scheduling bounds to O(1)";
      ]
    [
      row "lazy scheduling" lazy_run;
      row "Benno scheduling" benno;
    ]
