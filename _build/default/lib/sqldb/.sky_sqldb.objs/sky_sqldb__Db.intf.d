lib/sqldb/db.mli: Btree Pager Sky_ukernel Sky_xv6fs
