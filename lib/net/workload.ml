(** Workload machinery shared by the closed-loop ({!Loadgen}) and
    open-loop ({!Openloop}) generators: the request mix, expected-result
    tracking, deterministic value synthesis, response classification and
    RSS-aware flow placement.

    Extracted from the closed-loop generator without changing any RNG
    draw order, so the existing web/chaos/mesh benches stay
    byte-identical. *)

open Sky_sim

type mix = { m_kv_get : int; m_kv_put : int; m_fs_get : int }

let default_mix = { m_kv_get = 6; m_kv_put = 2; m_fs_get = 2 }

type expect =
  | Stored
  | Value of bytes
  | File of bytes

(* Classification of one response against what the request should have
   produced. [Shed] is the admission-control outcome (503) — offered
   load the server refused, not a correctness failure. [Unservable] is
   the terminal denied-by-every-receiver outcome (403). *)
type verdict = Good | Shed | Unservable | Corrupt

let value_bytes rng flow n =
  let tag = Printf.sprintf "v%d-%d:" flow n in
  let pad = Rng.bytes rng 32 in
  (* printable payload so hexdumps stay readable *)
  Bytes.iteri
    (fun i c -> Bytes.set pad i (Char.chr (97 + (Char.code c land 15))))
    pad;
  Bytes.cat (Bytes.of_string tag) pad

let body_matches expect (resp : Http.response) =
  match expect with
  | Stored -> resp.Http.status = 200 && Bytes.to_string resp.Http.body = "stored"
  | Value v -> resp.Http.status = 200 && Bytes.equal resp.Http.body v
  | File data -> resp.Http.status = 200 && Bytes.equal resp.Http.body data

let classify expect (resp : Http.response) =
  if resp.Http.status = 503 then Shed
  else if resp.Http.status = 403 then Unservable
  else if body_matches expect resp then Good
  else Corrupt

(* Pick connection [i]'s flow id so RSS steers it to queue [i mod nq] —
   scan candidate ids (deterministically) until the hash cooperates. *)
let place_flows nic ~conns =
  let nq = Nic.n_queues nic in
  let next = ref 1 in
  Array.init conns (fun i ->
      let target = i mod nq in
      let rec hunt f =
        if Nic.queue_of_flow nic f = target then begin
          next := f + 1;
          f
        end
        else hunt (f + 1)
      in
      hunt !next)
