(* The paper's real-world application (§6.5): a SQLite-like database on
   top of an xv6fs server on top of a RAM-disk server — three processes,
   two IPC boundaries — driven by YCSB-A.

   Run with:  dune exec examples/sqlite_ycsb.exe [records] [ops_per_thread] *)

open Sky_experiments

let sql_demo () =
  (* The DB speaks SQL, like its namesake. *)
  let stack = Stack.build ~transport:Stack.Skybridge () in
  let db = stack.Stack.db in
  List.iter
    (fun stmt ->
      let result =
        match Sky_sqldb.Sql.exec db ~core:0 stmt with
        | Sky_sqldb.Sql.Ok_affected n -> Printf.sprintf "%d row(s)" n
        | Sky_sqldb.Sql.Row v -> Printf.sprintf "%S" v
        | Sky_sqldb.Sql.Empty -> "(no rows)"
      in
      Printf.printf "  sqlite3> %-55s -> %s
" stmt result)
    [ "INSERT INTO sqlite3 VALUES (1, 'skybridge')";
      "SELECT value FROM sqlite3 WHERE key = 1";
      "UPDATE sqlite3 SET value = 'vmfunc' WHERE key = 1";
      "SELECT * FROM sqlite3 WHERE key = 1";
      "DELETE FROM sqlite3 WHERE key = 1";
      "SELECT * FROM sqlite3 WHERE key = 1" ];
  print_newline ()

let () =
  sql_demo ();
  let records =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  let ops = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 40 in
  Printf.printf
    "Multi-tier SQLite stack: client(+DB) -> xv6fs -> RAM disk\n\
     YCSB-A (50%% read / 50%% update), %d records, %d ops/thread\n\n"
    records ops;
  Printf.printf "%-12s %10s %10s %10s %10s\n" "transport" "1 thr" "2 thr" "4 thr" "8 thr";
  List.iter
    (fun (name, transport) ->
      let stack = Stack.build ~transport () in
      let wl =
        Sky_ycsb.Workload.create stack.Stack.kernel stack.Stack.db ~records
          ~value_size:100
      in
      Sky_ycsb.Workload.load wl ~core:0;
      Printf.printf "%-12s" name;
      List.iter
        (fun threads ->
          Stack.spread_client stack ~threads;
          let tput =
            Sky_ycsb.Workload.run wl ~kind:Sky_ycsb.Workload.A ~threads
              ~ops_per_thread:ops
          in
          Printf.printf " %9.0f " tput)
        [ 1; 2; 4; 8 ];
      print_newline ())
    [ ("ST-Server", Stack.Ipc { st = true }); ("MT-Server", Stack.Ipc { st = false });
      ("SkyBridge", Stack.Skybridge) ];
  print_newline ();
  (* Show where the time goes: FS lock contention. *)
  let stack = Stack.build ~transport:Stack.Skybridge () in
  let wl =
    Sky_ycsb.Workload.create stack.Stack.kernel stack.Stack.db ~records
      ~value_size:100
  in
  Sky_ycsb.Workload.load wl ~core:0;
  Stack.spread_client stack ~threads:8;
  ignore (Sky_ycsb.Workload.run wl ~kind:Sky_ycsb.Workload.A ~threads:8 ~ops_per_thread:ops);
  let lock = Sky_xv6fs.Fs.lock (Stack.fs stack) in
  Printf.printf
    "xv6fs big lock at 8 threads: %d acquisitions, %d contended — \"we use \
     one big lock in the file system, that is the reason why the \
     scalability is so bad\" (SS6.5)\n"
    lock.Sky_ukernel.Lock.acquisitions lock.Sky_ukernel.Lock.contended
