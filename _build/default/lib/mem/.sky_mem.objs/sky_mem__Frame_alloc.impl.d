lib/mem/frame_alloc.ml: Bytes Char Phys_mem Printf
