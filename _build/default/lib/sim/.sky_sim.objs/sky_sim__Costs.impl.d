lib/sim/costs.ml:
