(** Synchronous IPC for the three baseline kernels.

    One [t] per kernel instance. Servers register an endpoint with a
    handler and a set of cores carrying server threads:

    - [cores = [c]] is the paper's {e ST-Server} configuration — a single
      working thread pinned to core [c]; calls from other cores take the
      cross-core path (IPIs, Figure 7's right bars).
    - one thread pinned per physical core is {e MT-Server}: every call
      finds a local thread and takes the local (fast, on seL4/Fiasco)
      path.

    Handlers run in the server's address space on whatever core serves
    the request, and may perform nested IPC calls (the SQLite stack:
    client → FS → block device). *)

type handler = core:int -> bytes -> bytes

type endpoint = {
  id : int;
  server : Sky_ukernel.Proc.t;
  handler : handler;
  mutable cores : int list;  (** cores with a server thread; [] = all *)
  stats : Breakdown.t;  (** accumulated over all calls *)
  mutable calls : int;
  root_cap : Sky_ukernel.Capability.t;
      (** the server's root capability on this endpoint (recv+grant) *)
}

type t

type long_ipc =
  | Shared_copy
      (** SS8.1's shared buffer, "which requires two memory copies" *)
  | Temp_map
      (** L4's temporary mapping: the sender's pages are mapped into the
          receiver for the transfer — one copy saved, per-page
          map/INVLPG work paid *)

val create :
  ?enforce_caps:bool -> ?long_ipc:long_ipc -> Sky_ukernel.Kernel.t -> t
(** With [enforce_caps] (default false, matching the permissive test
    setups), {!call} requires the client to hold a live send capability
    on the endpoint, seL4-style; grant one with {!grant_send}. *)

val kernel : t -> Sky_ukernel.Kernel.t
val caps : t -> Sky_ukernel.Capability.registry

val grant_send :
  t -> endpoint -> Sky_ukernel.Proc.t -> Sky_ukernel.Capability.t
(** Derive a send-only capability for the client from the server's root
    capability. Revoking the root's children (or deleting this cap) cuts
    the client off. *)

val register :
  t -> Sky_ukernel.Proc.t -> ?cores:int list -> handler -> endpoint

val call :
  t ->
  core:int ->
  client:Sky_ukernel.Proc.t ->
  endpoint ->
  bytes ->
  bytes
(** One synchronous IPC round trip: request [msg], reply returned.
    Charges all direct costs, performs the real mode/address-space
    switches on the core's vCPU, copies the message through simulated
    memory (polluting caches), and runs the handler in the server's
    context. *)

val register_msg_limit : int
(** Messages at most this long travel in CPU registers (seL4 fastpath
    condition; 32 bytes ~ 4 message registers). *)
