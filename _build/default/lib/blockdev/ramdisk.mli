(** RAM-disk block device (§6.5: "We use a RAM disk device to work as the
    block device and the file system communicates with the device with
    IPC").

    Blocks live in simulated physical memory, so every transfer pulls
    real cache lines through the serving core's hierarchy. *)

type t

val block_size : int
(** 1024 bytes (xv6's BSIZE). *)

val create : Sky_sim.Machine.t -> nblocks:int -> t

val read : t -> Sky_sim.Cpu.t -> int -> bytes
(** Raises [Invalid_argument] out of range. *)

val write : t -> Sky_sim.Cpu.t -> int -> bytes -> unit
(** The payload must be exactly one block. *)

val nblocks : t -> int
val reads : t -> int
val writes : t -> int
