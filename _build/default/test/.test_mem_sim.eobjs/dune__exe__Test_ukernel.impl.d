test/test_ukernel.ml: Alcotest Breakdown Bytes Config Costs Cpu Ipc Kernel Layout Lock Machine Printf Proc Sky_isa Sky_kernels Sky_mmu Sky_sim Sky_ukernel Tlb
