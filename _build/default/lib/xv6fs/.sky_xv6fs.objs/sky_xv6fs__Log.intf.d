lib/xv6fs/log.mli: Bcache Sky_blockdev Sky_sim Superblock
