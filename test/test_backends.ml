(* Tests for the pluggable isolation backends: the same Subkernel
   behavior (calls, crash -> restart -> rebind, revocation -> slowpath,
   watchdog forced returns) under VMFUNC, MPK and the filtered syscall;
   each mechanism's own security argument (the WRPKRU binary scan, the
   flow.pkru-escape invariant, the entry filter) via injected-mutation
   tests; the per-flavor trampoline checks; the cost ordering; and the
   qcheck cross-backend equivalence sweep. *)

open Sky_sim
open Sky_ukernel
open Sky_core
module Fault = Sky_faults.Fault
module Descriptor = Sky_backends.Descriptor
module Registry = Sky_backends.Registry

let with_faults f = Fun.protect ~finally:Fault.disable f

let user_code = Sky_isa.Encode.encode_all [ Sky_isa.Insn.Nop; Sky_isa.Insn.Ret ]

let spawn_with_code k name =
  let p = Kernel.spawn k ~name in
  ignore (Kernel.map_code k p user_code);
  p

let echo ~core:_ msg = msg

let setup ~backend () =
  let machine = Machine.create ~cores:4 ~mem_mib:64 () in
  let k = Kernel.create machine in
  let sb = Subkernel.init ~backend k in
  let client = spawn_with_code k "client" in
  let server = spawn_with_code k "server" in
  let sid = Subkernel.register_server sb server echo in
  Subkernel.register_client_to_server sb client ~server_id:sid;
  Kernel.context_switch k ~core:0 client;
  (k, sb, client, server, sid)

let msg8 = Bytes.make 8 'm'

(* Run [test] once per backend, with the backend's name in the failure
   message. *)
let each_backend test () =
  List.iter
    (fun backend ->
      try test ~backend
      with e ->
        Alcotest.failf "[backend %s] %s" (Backend.name backend)
          (Printexc.to_string e))
    Backend.all

(* ------------------------------------------------------------------ *)
(* The same call semantics under every mechanism                       *)
(* ------------------------------------------------------------------ *)

let test_echo_direct ~backend =
  let _, sb, client, _, sid = setup ~backend () in
  Alcotest.(check bool) "backend recorded" true (Subkernel.backend sb = backend);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Ok (reply, `Direct) ->
    Alcotest.(check bool) "echo" true (Bytes.equal reply msg8)
  | _ -> Alcotest.fail "expected direct success");
  Alcotest.(check (list Alcotest.reject)) "audit clean" [] (Subkernel.audit sb)

let test_backend_state ~backend =
  let _, sb, client, server, _ = setup ~backend () in
  match backend with
  | Backend.Vmfunc ->
    Alcotest.(check bool) "no mpk view" true
      (Subkernel.mpk_view sb client = None);
    Alcotest.(check int) "empty entry filter" 0
      (Entry_filter.size (Subkernel.entry_filter sb))
  | Backend.Mpk ->
    (* Client and server hold distinct keys; each resting view writes
       only its own key (plus shared key 0). *)
    let ck, cv = Option.get (Subkernel.mpk_view sb client) in
    let sk, sv = Option.get (Subkernel.mpk_view sb server) in
    Alcotest.(check bool) "distinct keys" true (ck <> sk);
    Alcotest.(check bool) "client view excludes server key" false
      (Sky_mmu.Pkru.allows_write ~pkru:cv ~key:sk);
    Alcotest.(check bool) "server view excludes client key" false
      (Sky_mmu.Pkru.allows_write ~pkru:sv ~key:ck);
    Alcotest.(check bool) "own key writable" true
      (Sky_mmu.Pkru.allows_write ~pkru:cv ~key:ck)
  | Backend.Syscall ->
    (* Binding granted exactly the trampoline entry. *)
    let ef = Subkernel.entry_filter sb in
    Alcotest.(check bool) "grant present" true (Entry_filter.size ef > 0);
    List.iter
      (fun (_, _, entry) ->
        Alcotest.(check int) "blessed entry" Layout.trampoline_va entry)
      (Entry_filter.entries ef)

let test_crash_restart_rebind ~backend =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup ~backend () in
  Fault.reset ~seed:2 ();
  Fault.arm ~site:"server.server" ~kind:Fault.Crash (Fault.At_hit 1);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Error (Subkernel.Crashed { server_id }) ->
    Alcotest.(check int) "crashed id" sid server_id
  | _ -> Alcotest.fail "expected Error Crashed");
  Fault.disable ();
  Alcotest.(check (list int)) "dead" [ sid ] (Subkernel.dead_servers sb);
  Subkernel.restart_server sb ~server_id:sid;
  Alcotest.(check (list int)) "alive" [] (Subkernel.dead_servers sb);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Ok (reply, `Direct) ->
    Alcotest.(check bool) "echo after rebind" true (Bytes.equal reply msg8)
  | _ -> Alcotest.fail "expected direct success after restart");
  Alcotest.(check (list Alcotest.reject)) "audit clean" [] (Subkernel.audit sb)

let test_revoke_slowpath_rebind ~backend =
  let _, sb, client, _, sid = setup ~backend () in
  Subkernel.revoke_binding sb ~core:0 client ~server_id:sid ~reason:"test";
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Ok (reply, `Slowpath) ->
    Alcotest.(check bool) "slowpath echo" true (Bytes.equal reply msg8)
  | _ -> Alcotest.fail "expected slowpath degradation");
  (match backend with
  | Backend.Syscall ->
    Alcotest.(check int) "grant removed" 0
      (Entry_filter.size (Subkernel.entry_filter sb))
  | _ -> ());
  Subkernel.rebind sb client ~server_id:sid;
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Ok (reply, `Direct) ->
    Alcotest.(check bool) "direct again" true (Bytes.equal reply msg8)
  | _ -> Alcotest.fail "expected direct success after rebind");
  Alcotest.(check (list Alcotest.reject)) "audit clean" [] (Subkernel.audit sb)

let test_hang_forced_return ~backend =
  with_faults @@ fun () ->
  let _, sb, client, _, sid = setup ~backend () in
  Fault.reset ~seed:3 ();
  Fault.arm ~site:"server.server" ~kind:Fault.Hang (Fault.At_hit 1);
  (match Subkernel.call sb ~core:0 ~client ~server_id:sid ~timeout:10_000 msg8 with
  | Error (Subkernel.Timeout { server_id; _ }) ->
    Alcotest.(check int) "timed-out id" sid server_id
  | _ -> Alcotest.fail "expected Error Timeout");
  Fault.disable ();
  Alcotest.(check bool) "forced return recorded" true
    (Subkernel.forced_returns sb > 0);
  (* The forced return restored the client: the connection still works. *)
  match Subkernel.call sb ~core:0 ~client ~server_id:sid msg8 with
  | Ok (reply, `Direct) ->
    Alcotest.(check bool) "echo after forced return" true
      (Bytes.equal reply msg8)
  | _ -> Alcotest.fail "expected direct success after forced return"

(* ------------------------------------------------------------------ *)
(* Per-mechanism security arguments, by injected mutation              *)
(* ------------------------------------------------------------------ *)

(* Under MPK, a process shipping a stray WRPKRU must be refused at
   registration (the ERIM binary inspection); the same bytes are fine
   under VMFUNC, whose argument doesn't involve WRPKRU at all. *)
let test_wrpkru_scan_gates_registration () =
  let evil_code =
    Sky_isa.Encode.encode_all
      [ Sky_isa.Insn.Nop; Sky_isa.Insn.Wrpkru; Sky_isa.Insn.Ret ]
  in
  let try_register backend =
    let machine = Machine.create ~cores:2 ~mem_mib:64 () in
    let k = Kernel.create machine in
    let sb = Subkernel.init ~backend k in
    let evil = Kernel.spawn k ~name:"evil" in
    ignore (Kernel.map_code k evil evil_code);
    match Subkernel.register_server sb evil echo with
    | _ -> Ok ()
    | exception Subkernel.Audit_failed vs -> Error vs
  in
  (match try_register Backend.Mpk with
  | Error vs ->
    Alcotest.(check bool) "wrpkru invariant named" true
      (List.exists
         (fun v ->
           v.Sky_analysis.Report.invariant = "gadget.wrpkru-pattern")
         vs)
  | Ok () -> Alcotest.fail "MPK registration must refuse a stray WRPKRU");
  match try_register Backend.Vmfunc with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "VMFUNC registration must not run the WRPKRU scan"

(* The flow.pkru-escape invariant: a healthy MPK machine passes; a
   mutated resting view that writes another domain's key is flagged. *)
let test_pkru_escape_mutation () =
  let _, sb, _, _, _ = setup ~backend:Backend.Mpk () in
  let inp = Subkernel.isoflow_input sb in
  Alcotest.(check (list Alcotest.reject)) "healthy machine clean" []
    (Sky_analysis.Isoflow.check inp);
  let mpk = Option.get inp.Sky_analysis.Isoflow.mpk in
  let victim, thief =
    match mpk.Sky_analysis.Isoflow.m_domains with
    | a :: b :: _ -> (a, b)
    | _ -> Alcotest.fail "expected two MPK domains"
  in
  let mutated =
    {
      thief with
      Sky_analysis.Isoflow.m_view =
        Sky_mmu.Pkru.allow_only
          [ 0; thief.Sky_analysis.Isoflow.m_key;
            victim.Sky_analysis.Isoflow.m_key ];
    }
  in
  let inp' =
    {
      inp with
      Sky_analysis.Isoflow.mpk =
        Some
          {
            mpk with
            Sky_analysis.Isoflow.m_domains =
              List.map
                (fun d ->
                  if d.Sky_analysis.Isoflow.m_pid
                     = thief.Sky_analysis.Isoflow.m_pid
                  then mutated
                  else d)
                mpk.Sky_analysis.Isoflow.m_domains;
          };
    }
  in
  let vs = Sky_analysis.Isoflow.check inp' in
  Alcotest.(check bool) "escape flagged" true
    (List.exists
       (fun v -> v.Sky_analysis.Report.invariant = "flow.pkru-escape")
       vs)

(* Tampering with the kernel's grant table denies the very next trap:
   the crossing raises rather than silently landing in the server. *)
let test_entry_filter_denial () =
  let _, sb, client, _, sid = setup ~backend:Backend.Syscall () in
  Entry_filter.revoke (Subkernel.entry_filter sb)
    ~pid:client.Proc.pid ~server:sid;
  (match Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid msg8 with
  | _ -> Alcotest.fail "expected the entry filter to deny the trap"
  | exception Subkernel.Binding_revoked _ -> ());
  Alcotest.(check bool) "denial counted" true
    (Entry_filter.denials (Subkernel.entry_filter sb) > 0)

(* A grant pointing outside every blessed code range fails the
   entryfilter audit pass. *)
let test_unblessed_entry_flagged () =
  let _, sb, client, _, sid = setup ~backend:Backend.Syscall () in
  Alcotest.(check (list Alcotest.reject)) "clean before" [] (Subkernel.audit sb);
  Entry_filter.allow (Subkernel.entry_filter sb)
    ~pid:client.Proc.pid ~server:(sid + 1) ~entry:0xdead000;
  let vs = Subkernel.audit sb in
  Alcotest.(check bool) "unblessed grant flagged" true
    (List.exists
       (fun v ->
         v.Sky_analysis.Report.invariant = "entryfilter.unblessed-entry")
       vs)

(* ------------------------------------------------------------------ *)
(* Per-flavor trampoline checks                                        *)
(* ------------------------------------------------------------------ *)

let test_trampoline_flavors () =
  let check flavor code = Sky_analysis.Tramp_check.check ~flavor code in
  (* Each gate passes its own flavor... *)
  Alcotest.(check (list Alcotest.reject)) "vmfunc gate ok" []
    (check `Vmfunc (Sky_core.Trampoline.code ()));
  Alcotest.(check (list Alcotest.reject)) "mpk gate ok" []
    (check `Mpk (Sky_core.Trampoline.mpk_code ()));
  Alcotest.(check (list Alcotest.reject)) "syscall gate ok" []
    (check `Syscall (Sky_core.Trampoline.syscall_code ()));
  (* ...and is flagged under any other: the wrong mechanism instruction
     in a call gate is exactly what the check exists to catch. *)
  Alcotest.(check bool) "vmfunc gate under mpk flagged" true
    (check `Mpk (Sky_core.Trampoline.code ()) <> []);
  Alcotest.(check bool) "mpk gate under vmfunc flagged" true
    (check `Vmfunc (Sky_core.Trampoline.mpk_code ()) <> []);
  Alcotest.(check bool) "syscall gate under vmfunc flagged" true
    (check `Vmfunc (Sky_core.Trampoline.syscall_code ()) <> [])

(* ------------------------------------------------------------------ *)
(* Registry + cost ordering                                            *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  Alcotest.(check (list string)) "names" [ "vmfunc"; "mpk"; "syscall" ]
    (Registry.names ());
  List.iter
    (fun d ->
      match Registry.of_string (Descriptor.name d) with
      | Some d' ->
        Alcotest.(check bool) "roundtrip" true
          (Descriptor.kind d' = Descriptor.kind d)
      | None -> Alcotest.fail "of_string failed")
    Registry.all;
  Alcotest.(check bool) "unknown rejected" true (Registry.of_string "ept" = None);
  let leg k = Descriptor.switch_cycles (Registry.find k) in
  Alcotest.(check bool) "mpk < vmfunc < syscall per leg" true
    (leg Backend.Mpk < leg Backend.Vmfunc
    && leg Backend.Vmfunc < leg Backend.Syscall)

(* The headline measured claim, end to end: the WRPKRU crossing beats
   VMFUNC on the identical pingpong workload, and the filtered syscall
   trails both. *)
let test_cost_ordering_measured () =
  let cycles backend =
    Registry.with_backend backend (fun () ->
        (Sky_experiments.Exp_pingpong.measure_full ())
          .Sky_experiments.Exp_pingpong.f_cycles_per_call)
  in
  let v = cycles Backend.Vmfunc in
  let m = cycles Backend.Mpk in
  let s = cycles Backend.Syscall in
  Alcotest.(check bool)
    (Printf.sprintf "mpk %d < vmfunc %d" m v)
    true (m < v);
  Alcotest.(check bool)
    (Printf.sprintf "vmfunc %d < syscall %d" v s)
    true (v < s)

(* ------------------------------------------------------------------ *)
(* qcheck: cross-backend equivalence                                   *)
(* ------------------------------------------------------------------ *)

(* One interleaving step. Calls carry a key/value the server stores, so
   the final KV state witnesses that the same calls reached the same
   server-side effects under every mechanism. *)
type step = Put of int * char | Crash | Restart | Revoke | Rebind

let step_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Put (k, v)) (int_bound 7)
           (map Char.chr (int_range 97 122)));
        (1, return Crash);
        (1, return Restart);
        (1, return Revoke);
        (1, return Rebind);
      ])

let show_step = function
  | Put (k, v) -> Printf.sprintf "Put(%d,%c)" k v
  | Crash -> "Crash"
  | Restart -> "Restart"
  | Revoke -> "Revoke"
  | Rebind -> "Rebind"

let steps_arb =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map show_step l))
    QCheck.Gen.(list_size (int_range 1 25) step_gen)

(* Run one interleaving under one backend; return the per-step outcome
   tags plus the server's final KV state. The KV server stores byte 1
   at index byte 0 of each message and echoes the previous value. *)
let run_steps ~backend steps =
  with_faults @@ fun () ->
  let store = Bytes.make 8 '.' in
  let kv ~core:_ msg =
    let k = Char.code (Bytes.get msg 0) land 7 in
    let prev = Bytes.get store k in
    Bytes.set store k (Bytes.get msg 1);
    Bytes.make 8 prev
  in
  let machine = Machine.create ~cores:4 ~mem_mib:64 () in
  let k = Kernel.create machine in
  let sb = Subkernel.init ~backend k in
  let client = spawn_with_code k "client" in
  let server = spawn_with_code k "kv" in
  let sid = Subkernel.register_server sb server kv in
  Subkernel.register_client_to_server sb client ~server_id:sid;
  Kernel.context_switch k ~core:0 client;
  let tag_of = function
    | Ok (reply, `Direct) -> Printf.sprintf "direct:%c" (Bytes.get reply 0)
    | Ok (reply, `Slowpath) -> Printf.sprintf "slow:%c" (Bytes.get reply 0)
    | Error (Subkernel.Timeout _) -> "timeout"
    | Error (Subkernel.Crashed _) -> "crashed"
    | Error (Subkernel.Revoked _) -> "revoked"
  in
  let outcome step =
    match step with
    | Put (key, v) ->
      let msg = Bytes.make 8 v in
      Bytes.set msg 0 (Char.chr key);
      Bytes.set msg 1 v;
      tag_of (Subkernel.call sb ~core:0 ~client ~server_id:sid msg)
    | Crash ->
      Fault.reset ~seed:9 ();
      Fault.arm ~site:"server.kv" ~kind:Fault.Crash (Fault.At_hit 1);
      let t = tag_of (Subkernel.call sb ~core:0 ~client ~server_id:sid msg8) in
      Fault.disable ();
      t
    | Restart ->
      Subkernel.restart_server sb ~server_id:sid;
      "restarted"
    | Revoke ->
      if Subkernel.bindings sb <> [] then
        Subkernel.revoke_binding sb ~core:0 client ~server_id:sid
          ~reason:"sweep";
      "revoked-binding"
    | Rebind ->
      (if Subkernel.dead_servers sb = [] && Subkernel.bindings sb = [] then
         Subkernel.rebind sb client ~server_id:sid);
      "rebound"
  in
  let tags = List.map outcome steps in
  (tags, Bytes.to_string store, Subkernel.audit sb = [])

let equivalence_sweep =
  QCheck.Test.make
    ~name:
      "random call/crash/revoke interleavings: identical outcomes and KV \
       state on every backend"
    ~count:25 steps_arb
    (fun steps ->
      let reference = run_steps ~backend:Backend.Vmfunc steps in
      List.for_all
        (fun backend -> run_steps ~backend steps = reference)
        [ Backend.Mpk; Backend.Syscall ]
      &&
      let _, _, clean = reference in
      clean)

(* ------------------------------------------------------------------ *)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "backends"
    [
      ( "semantics",
        [
          t "echo direct on every backend" (each_backend test_echo_direct);
          t "per-backend machine state" (each_backend test_backend_state);
          t "crash -> restart -> rebind" (each_backend test_crash_restart_rebind);
          t "revoke -> slowpath -> rebind"
            (each_backend test_revoke_slowpath_rebind);
          t "hang -> forced return" (each_backend test_hang_forced_return);
        ] );
      ( "security",
        [
          t "wrpkru scan gates registration (mpk only)"
            test_wrpkru_scan_gates_registration;
          t "flow.pkru-escape mutation" test_pkru_escape_mutation;
          t "entry filter denies tampered grant" test_entry_filter_denial;
          t "unblessed entry grant flagged" test_unblessed_entry_flagged;
          t "trampoline per-flavor checks" test_trampoline_flavors;
        ] );
      ( "cost",
        [
          t "registry + static ordering" test_registry;
          t "measured ordering: mpk < vmfunc < syscall"
            test_cost_ordering_measured;
        ] );
      ("equivalence", qc [ equivalence_sweep ]);
    ]
