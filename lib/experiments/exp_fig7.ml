(** Figure 7: performance breakdown of synchronous IPC in the three
    microkernels (single-core and cross-core) and SkyBridge's 396-cycle
    roundtrip. *)

open Sky_ukernel
open Sky_kernels
open Sky_harness

type row = {
  label : string;
  paper : int;
  measured : int;
  breakdown : Breakdown.t;
}

let iters_warm = 50
let iters = 1000

let measure_baseline ~variant ~cross =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let kernel = Kernel.create ~config:(Config.default variant) machine in
  let ipc = Ipc.create kernel in
  let client = Kernel.spawn kernel ~name:"client" in
  let server = Kernel.spawn kernel ~name:"server" in
  let ep =
    Ipc.register ipc server
      ~cores:(if cross then [ 1 ] else [])
      (fun ~core:_ msg -> msg)
  in
  Kernel.context_switch kernel ~core:0 client;
  let msg = Bytes.create 8 in
  for _ = 1 to iters_warm do
    ignore (Ipc.call ipc ~core:0 ~client ep msg)
  done;
  (* Reset stats after warmup for a clean steady-state breakdown. *)
  let bd0 = Breakdown.create () in
  Breakdown.add bd0 ep.Ipc.stats;
  let cpu = Kernel.cpu kernel ~core:0 in
  let t0 = Sky_sim.Cpu.cycles cpu in
  for _ = 1 to iters do
    ignore (Ipc.call ipc ~core:0 ~client ep msg)
  done;
  let per_rt = (Sky_sim.Cpu.cycles cpu - t0) / iters in
  (* Per-roundtrip breakdown over the measured window. *)
  let bd = Breakdown.create () in
  Breakdown.add bd ep.Ipc.stats;
  bd.Breakdown.vmfunc <- bd.Breakdown.vmfunc - bd0.Breakdown.vmfunc;
  bd.Breakdown.syscall <- bd.Breakdown.syscall - bd0.Breakdown.syscall;
  bd.Breakdown.ctx <- bd.Breakdown.ctx - bd0.Breakdown.ctx;
  bd.Breakdown.ipi <- bd.Breakdown.ipi - bd0.Breakdown.ipi;
  bd.Breakdown.copy <- bd.Breakdown.copy - bd0.Breakdown.copy;
  bd.Breakdown.sched <- bd.Breakdown.sched - bd0.Breakdown.sched;
  bd.Breakdown.other <- bd.Breakdown.other - bd0.Breakdown.other;
  bd.Breakdown.walk <- bd.Breakdown.walk - bd0.Breakdown.walk;
  (per_rt, Breakdown.scale bd iters)

let measure_skybridge ~variant =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let kernel = Kernel.create ~config:(Config.default variant) machine in
  let sb = Sky_core.Subkernel.init kernel in
  let client = Kernel.spawn kernel ~name:"client" in
  let server = Kernel.spawn kernel ~name:"server" in
  let sid = Sky_core.Subkernel.register_server sb server (fun ~core:_ msg -> msg) in
  Sky_core.Subkernel.register_client_to_server sb client ~server_id:sid;
  Kernel.context_switch kernel ~core:0 client;
  let msg = Bytes.create 8 in
  for _ = 1 to iters_warm do
    ignore (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid msg)
  done;
  let cpu = Kernel.cpu kernel ~core:0 in
  let calls0 = Sky_core.Subkernel.calls sb in
  let t0 = Sky_sim.Cpu.cycles cpu in
  for _ = 1 to iters do
    ignore (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid msg)
  done;
  let per_rt = (Sky_sim.Cpu.cycles cpu - t0) / iters in
  ignore calls0;
  let bd = Breakdown.scale (Sky_core.Subkernel.stats sb) (Sky_core.Subkernel.calls sb) in
  (per_rt, bd)

let run () =
  let rows =
    [
      (let m, b = measure_skybridge ~variant:Config.Sel4 in
       { label = "seL4-SkyBridge"; paper = 396; measured = m; breakdown = b });
      (let m, b = measure_skybridge ~variant:Config.Fiasco in
       { label = "Fiasco.OC-SkyBridge"; paper = 396; measured = m; breakdown = b });
      (let m, b = measure_skybridge ~variant:Config.Zircon in
       { label = "Zircon-SkyBridge"; paper = 396; measured = m; breakdown = b });
      (let m, b = measure_baseline ~variant:Config.Sel4 ~cross:false in
       { label = "seL4 fastpath (1 core)"; paper = 986; measured = m; breakdown = b });
      (let m, b = measure_baseline ~variant:Config.Sel4 ~cross:true in
       { label = "seL4 cross core"; paper = 6764; measured = m; breakdown = b });
      (let m, b = measure_baseline ~variant:Config.Fiasco ~cross:false in
       { label = "Fiasco fastpath (1 core)"; paper = 2717; measured = m; breakdown = b });
      (let m, b = measure_baseline ~variant:Config.Fiasco ~cross:true in
       { label = "Fiasco cross core"; paper = 8440; measured = m; breakdown = b });
      (let m, b = measure_baseline ~variant:Config.Zircon ~cross:false in
       { label = "Zircon (1 core)"; paper = 8157; measured = m; breakdown = b });
      (let m, b = measure_baseline ~variant:Config.Zircon ~cross:true in
       { label = "Zircon cross core"; paper = 20099; measured = m; breakdown = b });
    ]
  in
  Tbl.make ~title:"Figure 7: synchronous IPC roundtrip breakdown (cycles)"
    ~header:
      [ "configuration"; "paper"; "ours"; "vmfunc"; "syscall"; "ctx"; "ipi";
        "copy"; "sched"; "other"; "walk" ]
    ~notes:
      [
        "breakdown columns are per-roundtrip direct costs; 'ours' also \
         includes warm cache accesses on the path";
        "'walk' is TLB-refill (nested page walk) cycles inside the call — \
         a cross-cutting attribution already contained in the other \
         columns, not an extra segment";
      ]
    (List.map
       (fun r ->
         [
           r.label;
           Tbl.fmt_int r.paper;
           Tbl.fmt_int r.measured;
           Tbl.fmt_int r.breakdown.Breakdown.vmfunc;
           Tbl.fmt_int r.breakdown.Breakdown.syscall;
           Tbl.fmt_int r.breakdown.Breakdown.ctx;
           Tbl.fmt_int r.breakdown.Breakdown.ipi;
           Tbl.fmt_int r.breakdown.Breakdown.copy;
           Tbl.fmt_int r.breakdown.Breakdown.sched;
           Tbl.fmt_int r.breakdown.Breakdown.other;
           Tbl.fmt_int r.breakdown.Breakdown.walk;
         ])
       rows)
