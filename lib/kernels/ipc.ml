open Sky_sim
open Sky_ukernel

type handler = core:int -> bytes -> bytes

type endpoint = {
  id : int;
  server : Proc.t;
  handler : handler;
  mutable cores : int list;
  stats : Breakdown.t;
  mutable calls : int;
  root_cap : Capability.t;
}

type long_ipc = Shared_copy | Temp_map

type t = {
  kernel : Kernel.t;
  mutable endpoints : endpoint list;
  mutable next_id : int;
  ipc_buffers : (int, int) Hashtbl.t;  (** pid -> buffer VA *)
  cap_registry : Capability.registry;
  enforce_caps : bool;
  long_ipc : long_ipc;
}

let register_msg_limit = 32
let ipc_buffer_size = 8192

let create ?(enforce_caps = false) ?(long_ipc = Shared_copy) kernel =
  {
    kernel;
    endpoints = [];
    next_id = 1;
    ipc_buffers = Hashtbl.create 8;
    cap_registry = Capability.create_registry ();
    enforce_caps;
    long_ipc;
  }

let kernel t = t.kernel
let caps t = t.cap_registry

let register t server ?(cores = []) handler =
  let id = t.next_id in
  let ep =
    {
      id;
      server;
      handler;
      cores;
      stats = Breakdown.create ();
      calls = 0;
      root_cap =
        Capability.mint t.cap_registry ~owner:server.Proc.pid ~target:id
          ~rights:Capability.all_rights ~badge:0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.endpoints <- ep :: t.endpoints;
  ep

let grant_send t ep client =
  Capability.derive t.cap_registry ep.root_cap ~new_owner:client.Proc.pid
    ~badge:client.Proc.pid Capability.send_only

let buffer_va t proc =
  match Hashtbl.find_opt t.ipc_buffers proc.Proc.pid with
  | Some va -> va
  | None ->
    let va = Kernel.map_anon t.kernel proc ipc_buffer_size in
    Hashtbl.replace t.ipc_buffers proc.Proc.pid va;
    va

let costs t = Costs_table.for_variant t.kernel.Kernel.config.Config.variant

let variant_slug t =
  match t.kernel.Kernel.config.Config.variant with
  | Config.Sel4 -> "sel4"
  | Config.Fiasco -> "fiasco"
  | Config.Zircon -> "zircon"
  | Config.Linux -> "linux"

(* Trace-span name of one IPC leg: the per-kernel phase the paper names
   in §6.3 (seL4 fast/slowpath, Fiasco fastpath-with-DRQ, Zircon's
   channel path, Linux's UDS path). *)
let leg_name t ~fast =
  match (t.kernel.Kernel.config.Config.variant, fast) with
  | Config.Sel4, true -> "sel4.fastpath"
  | Config.Sel4, false -> "sel4.slowpath"
  | Config.Fiasco, true -> "fiasco.fastpath.drq"
  | Config.Fiasco, false -> "fiasco.slowpath"
  | Config.Zircon, _ -> "zircon.channel"
  | Config.Linux, _ -> "linux.uds"

(* Measure the cycles a closure consumes on [core]. *)
let timed t ~core f =
  let c = Kernel.cpu t.kernel ~core in
  let before = Cpu.cycles c in
  let r = f () in
  (r, Cpu.cycles c - before)

(* Copy [data] from the current address space's IPC buffer area into the
   kernel's view and/or the peer buffer, charging real memory accesses.
   [vcpu] must have the owning process mapped. *)
let guest_write t ~core ~proc data =
  let va = buffer_va t proc in
  Kernel.context_switch t.kernel ~core proc;
  Sky_mmu.Translate.write_bytes
    (Kernel.vcpu t.kernel ~core)
    (Kernel.mem t.kernel) ~va data

let guest_read t ~core ~proc len =
  let va = buffer_va t proc in
  Kernel.context_switch t.kernel ~core proc;
  Sky_mmu.Translate.read_bytes
    (Kernel.vcpu t.kernel ~core)
    (Kernel.mem t.kernel) ~va ~len

(* Kernel-buffer bounce for Zircon's unoptimized double copy: the second
   pass streams through a kernel heap buffer. *)
let kernel_bounce t ~core len =
  let c = Kernel.cpu t.kernel ~core in
  let base = t.kernel.Kernel.kernel_data_pa + 65536 in
  let line = 64 in
  for l = 0 to ((max len 1) - 1) / line do
    (* write then read back *)
    Memsys.access c Memsys.Data (base + (l * line));
    Memsys.access c Memsys.Data (base + (l * line))
  done

(* Temporary mapping (L4's long-IPC optimization, SS8.1): instead of
   bouncing through a shared buffer, the kernel maps the sender's pages
   into the receiver's space for the duration of the transfer. Costs one
   PTE install + one INVLPG per page at teardown. *)
let temp_map_page_cost = 150

(* Transfer [data] from [src] process to [dst] process on [core]:
   register transfer when small, through memory otherwise. The default
   shared-buffer path performs the SS8.1 "two memory copies" (sender ->
   shared, shared -> receiver); [Temp_map] replaces the second copy with
   per-page mapping work. Returns the measured copy cycles. *)
let transfer t ~core ~src ~dst data =
  if Bytes.length data <= register_msg_limit then 0
  else begin
    let len = Bytes.length data in
    let _, cycles =
      timed t ~core (fun () ->
          (* Copy 1: the sender's data reaches kernel-visible memory. *)
          guest_write t ~core ~proc:src data;
          if (costs t).Costs_table.double_copy then kernel_bounce t ~core len;
          match t.long_ipc with
          | Shared_copy ->
            (* Copy 2: receiver-private copy out of the shared buffer. *)
            ignore (guest_read t ~core ~proc:dst len);
            guest_write t ~core ~proc:dst data
          | Temp_map ->
            (* Map sender pages into the receiver, single read pass,
               unmap + INVLPG. *)
            let pages = (len + 4095) / 4096 in
            Cpu.charge (Kernel.cpu t.kernel ~core) (pages * temp_map_page_cost);
            ignore (guest_read t ~core ~proc:dst len))
    in
    cycles
  end

(* One direction of an IPC on a single core: kernel entry, logic, message
   transfer, switch to [target], kernel exit. *)
let leg t ~core ~from_proc ~to_proc ~fast ~cross data (bd : Breakdown.t) =
  (* Fault site "ipc.leg": the kernel-mediated transfer dies mid-leg
     (fires only inside a mediated-call scope, e.g. the slowpath
     fallback of a revoked SkyBridge binding). *)
  if Sky_faults.Fault.is_enabled () then
    Sky_faults.Fault.inject ~core "ipc.leg";
  Sky_trace.Trace.span ~core ~cat:"other" (leg_name t ~fast) @@ fun () ->
  let k = t.kernel in
  let cost = costs t in
  let c = Kernel.cpu k ~core in
  let syscall_cycles = Costs.syscall + (2 * Costs.swapgs) + Costs.sysret in
  (* Entry *)
  let _, entry_cycles = timed t ~core (fun () -> Kernel.kernel_entry k ~core) in
  (* Software path: logic + optional scheduler. *)
  let logic = if fast then cost.Costs_table.fast_logic else cost.Costs_table.slow_logic in
  Cpu.charge c logic;
  bd.Breakdown.other <- bd.Breakdown.other + logic;
  Kernel.touch_kernel_text k ~core
    ~bytes:(if fast then cost.Costs_table.text_fast else cost.Costs_table.text_slow)
    ~off:4096;
  Kernel.touch_kernel_data k ~core ~bytes:cost.Costs_table.data_touch ~off:0;
  if not fast then begin
    Sky_trace.Trace.span ~core ~cat:"sched" "schedule" (fun () ->
        Cpu.charge c cost.Costs_table.sched);
    bd.Breakdown.sched <- bd.Breakdown.sched + cost.Costs_table.sched;
    Kernel.touch_kernel_text k ~core ~bytes:2048 ~off:65536
  end;
  if cross then begin
    Cpu.charge c cost.Costs_table.cross_extra;
    bd.Breakdown.other <- bd.Breakdown.other + cost.Costs_table.cross_extra
  end;
  (* Message transfer (also performs the context switch to the target as
     a side effect of addressing both buffers). *)
  let copy_cycles =
    Sky_trace.Trace.span ~core ~cat:"copy" "ipc.copy" (fun () ->
        transfer t ~core ~src:from_proc ~dst:to_proc data)
  in
  bd.Breakdown.copy <- bd.Breakdown.copy + copy_cycles;
  (* Address-space switch to the target (no-op if transfer already
     switched). *)
  let _, ctx_cycles =
    timed t ~core (fun () -> Kernel.context_switch k ~core to_proc)
  in
  bd.Breakdown.ctx <- bd.Breakdown.ctx + ctx_cycles;
  (* Exit *)
  let _, exit_cycles = timed t ~core (fun () -> Kernel.kernel_exit k ~core) in
  ignore (entry_cycles, exit_cycles);
  bd.Breakdown.syscall <- bd.Breakdown.syscall + syscall_cycles;
  if t.kernel.Kernel.config.Config.kpti then
    (* kernel_entry/exit charged two extra CR3 writes; attribute them to
       the context-switch category. *)
    bd.Breakdown.ctx <- bd.Breakdown.ctx + (2 * Costs.cr3_write)

let run_handler ep ~core msg =
  (* Handler executes in the server's address space in user mode. *)
  ep.handler ~core msg

(* Local call: request leg, handler, reply leg, all on [core]. *)
let local_call t ~core ~client ep ~fast msg =
  let bd = ep.stats in
  leg t ~core ~from_proc:client ~to_proc:ep.server ~fast ~cross:false msg bd;
  let reply = run_handler ep ~core msg in
  leg t ~core ~from_proc:ep.server ~to_proc:client ~fast ~cross:false reply bd;
  reply

(* Cross-core call: the client traps, IPIs the server core, the server
   core picks the request up, runs the handler, and IPIs back. The
   client's elapsed time covers the whole round trip; the server core's
   clock also advances, which is what serializes concurrent callers of a
   single-threaded server. *)
let cross_call t ~core ~client ep ~server_core msg =
  Sky_trace.Trace.span ~core ~cat:"other" (variant_slug t ^ ".cross") @@ fun () ->
  let k = t.kernel in
  let bd = ep.stats in
  let cost = costs t in
  let ccpu = Kernel.cpu k ~core and scpu = Kernel.cpu k ~core:server_core in
  (* The server core's TLB-refill cycles belong to this call too; the
     client core's delta is taken by [call] around the whole dispatch. *)
  let swalk0 = Pmu.read (Cpu.pmu scpu) Pmu.Walk_cycles in
  (* Client side: trap, queue the message, kick the server core. *)
  Kernel.kernel_entry k ~core;
  Cpu.charge ccpu cost.Costs_table.slow_logic;
  bd.Breakdown.other <- bd.Breakdown.other + cost.Costs_table.slow_logic;
  Kernel.touch_kernel_text k ~core ~bytes:cost.Costs_table.text_slow ~off:4096;
  Kernel.send_ipi k ~from_core:core ~to_core:server_core;
  bd.Breakdown.ipi <- bd.Breakdown.ipi + Costs.ipi;
  (* Server core: interrupt entry, schedule the server thread, copy the
     message in, run the handler. *)
  Kernel.kernel_entry k ~core:server_core;
  Sky_trace.Trace.span ~core:server_core ~cat:"sched" "schedule" (fun () ->
      Cpu.charge scpu (cost.Costs_table.sched + cost.Costs_table.cross_extra));
  bd.Breakdown.sched <- bd.Breakdown.sched + cost.Costs_table.sched;
  bd.Breakdown.other <- bd.Breakdown.other + cost.Costs_table.cross_extra;
  let copy1 =
    Sky_trace.Trace.span ~core:server_core ~cat:"copy" "ipc.copy" (fun () ->
        transfer t ~core:server_core ~src:client ~dst:ep.server msg)
  in
  let _, ctx1 =
    timed t ~core:server_core (fun () ->
        Kernel.context_switch k ~core:server_core ep.server)
  in
  Kernel.kernel_exit k ~core:server_core;
  let reply = run_handler ep ~core:server_core msg in
  (* Server replies: trap, copy out, IPI the client back. *)
  Kernel.kernel_entry k ~core:server_core;
  let copy2 =
    Sky_trace.Trace.span ~core:server_core ~cat:"copy" "ipc.copy" (fun () ->
        transfer t ~core:server_core ~src:ep.server ~dst:client reply)
  in
  Kernel.send_ipi k ~from_core:server_core ~to_core:core;
  bd.Breakdown.ipi <- bd.Breakdown.ipi + Costs.ipi;
  Kernel.kernel_exit k ~core:server_core;
  (* Client resumes once the reply IPI lands. *)
  Cpu.advance_to ccpu (Cpu.cycles scpu);
  let _, ctx2 =
    timed t ~core (fun () -> Kernel.context_switch k ~core client)
  in
  Kernel.kernel_exit k ~core;
  bd.Breakdown.copy <- bd.Breakdown.copy + copy1 + copy2;
  bd.Breakdown.ctx <- bd.Breakdown.ctx + ctx1 + ctx2;
  bd.Breakdown.syscall <-
    bd.Breakdown.syscall + (2 * (Costs.syscall + (2 * Costs.swapgs) + Costs.sysret));
  bd.Breakdown.walk <-
    bd.Breakdown.walk + (Pmu.read (Cpu.pmu scpu) Pmu.Walk_cycles - swalk0);
  reply

let call t ~core ~client ep msg =
  (* Capability enforcement (part of the fastpath's 98-cycle logic). *)
  if
    t.enforce_caps
    && not
         (Capability.check t.cap_registry ~pid:client.Proc.pid ~target:ep.id
            ~need:{ Capability.send = true; recv = false; grant = false })
  then
    raise
      (Capability.Cap_denied
         { pid = client.Proc.pid; target = ep.id; reason = "no send capability" });
  ep.calls <- ep.calls + 1;
  let cost = costs t in
  let local = ep.cores = [] || List.mem core ep.cores in
  (* The roundtrip span feeds the per-kernel latency histogram
     ("<kernel>.roundtrip") read by `skybench trace`. *)
  Sky_trace.Trace.span ~core ~cat:"ipc" (variant_slug t ^ ".roundtrip")
  @@ fun () ->
  (* Attribute the calling core's TLB-refill cycles during this call to
     the breakdown's walk column (cross-cutting; see {!Breakdown}). *)
  let cpmu = Cpu.pmu (Kernel.cpu t.kernel ~core) in
  let walk0 = Pmu.read cpmu Pmu.Walk_cycles in
  let finish reply =
    ep.stats.Breakdown.walk <-
      ep.stats.Breakdown.walk + (Pmu.read cpmu Pmu.Walk_cycles - walk0);
    reply
  in
  if local then begin
    let fast =
      cost.Costs_table.has_fastpath && Bytes.length msg <= register_msg_limit
    in
    finish (local_call t ~core ~client ep ~fast msg)
  end
  else begin
    let server_core =
      match ep.cores with
      | c :: _ -> c
      | [] -> assert false
    in
    finish (cross_call t ~core ~client ep ~server_core msg)
  end
