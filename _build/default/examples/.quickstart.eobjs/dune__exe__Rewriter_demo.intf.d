examples/rewriter_demo.mli:
