lib/kernels/scheduler.mli: Sky_sim
