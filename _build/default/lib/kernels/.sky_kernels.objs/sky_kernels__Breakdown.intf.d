lib/kernels/breakdown.mli: Format
