(** Whole-image VMFUNC gadget auditor (§3.3, §5; ERIM-style verification).

    The rewriter eliminates [0F 01 D4] from code pages; this module
    independently {e proves} the result, without sharing the rewriter's
    fixpoint logic, using three overlapping detectors:

    - a raw byte scan, page by page with a carried 2-byte overlap, so the
      pattern cannot hide across a page boundary ([gadget.vmfunc-pattern]);
    - a self-repairing linear sweep that decodes from {e every byte
      offset} of the image, catching VMFUNCs reachable through misaligned
      or overlapping instruction encodings the aligned decoder never sees
      ([gadget.misaligned-vmfunc]);
    - recursive descent from the image's entry points, following
      fall-through and branch targets ([gadget.reachable-vmfunc]).

    Bytes the decoder has no semantics for are reported as unverifiable
    ([gadget.unverifiable]) rather than silently trusted. *)

open Sky_isa

type image = {
  name : string;
  va : int;  (** base virtual address (reports offset image-relative) *)
  bytes : bytes;
  allowed : (int * int) list;
      (** [(offset, length)] ranges where VMFUNC is legal — the
          trampoline's two crossings, empty for ordinary code *)
  entries : int list;  (** entry offsets for recursive descent *)
}

let image ?(va = 0) ?(allowed = []) ?(entries = [ 0 ]) ~name bytes =
  { name; va; bytes; allowed; entries }

(* Which mechanism instruction the audit hunts for. VMFUNC for the
   EPTP-switching backend; WRPKRU for the MPK backend, where an
   attacker-reachable [0F 01 EF] lets a compromised domain grant itself
   every protection key — ERIM's binary-inspection requirement. *)
type rule = { r_insn : Insn.t; r_pattern : bytes; r_tag : string }

let vmfunc_rule =
  { r_insn = Insn.Vmfunc; r_pattern = Sky_rewriter.Scan.vmfunc_bytes;
    r_tag = "vmfunc" }

let wrpkru_rule =
  { r_insn = Insn.Wrpkru; r_pattern = Sky_rewriter.Scan.wrpkru_bytes;
    r_tag = "wrpkru" }

let in_allowed allowed at =
  List.exists (fun (off, len) -> at >= off && at < off + len) allowed

(* Offset of the raw pattern bytes inside a decoded occurrence (prefixed
   encodings put them after the prefixes/REX). *)
let pattern_off (d : Decode.decoded) = d.Decode.off + d.Decode.layout.Encode.opcode_off

(* Every offset where decoding yields the mechanism instruction — the
   misaligned-execution view of the image. *)
let sweep_every_offset ~rule code =
  let n = Bytes.length code in
  let hits = ref [] in
  for off = n - 1 downto 0 do
    let d = Decode.decode_one code off in
    if d.Decode.insn = Some rule.r_insn then hits := d :: !hits
  done;
  !hits

(* Aligned instruction-start offsets, for classifying a sweep hit as
   misaligned. *)
let aligned_starts code =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (d : Decode.decoded) -> Hashtbl.replace tbl d.Decode.off ())
    (Decode.decode_all code);
  tbl

(* Recursive descent from the entry points: follow fall-through, branch
   and call targets inside the image; stop at RET, out-of-image targets
   and undecodable bytes. *)
let reachable_vmfuncs ?(rule = vmfunc_rule) code ~entries =
  let n = Bytes.length code in
  let visited = Hashtbl.create 256 in
  let hits = ref [] in
  let rec go off =
    if off >= 0 && off < n && not (Hashtbl.mem visited off) then begin
      Hashtbl.replace visited off ();
      let d = Decode.decode_one code off in
      let next = off + d.Decode.len in
      match d.Decode.insn with
      | None -> ()  (* unverifiable bytes are reported separately *)
      | Some i when i = rule.r_insn ->
        hits := d :: !hits;
        go next
      | Some Insn.Ret -> ()
      | Some (Insn.Jmp_rel rel) -> go (next + rel)
      | Some (Insn.Jcc (_, rel)) ->
        go (next + rel);
        go next
      | Some (Insn.Call_rel rel) ->
        go (next + rel);
        go next
      | Some _ -> go next
    end
  in
  List.iter go entries;
  List.sort (fun a b -> compare a.Decode.off b.Decode.off) !hits

(* ---- content-hash memoization ----

   Chaos restarts and repeated whole-machine audits rescan the same
   images over and over: the web/mesh scenarios audit every registered
   process at the end of every run, and the per-registration audit
   re-proves the same trampoline bytes for every process. The scan is a
   pure function of the image, so memoize it on an FNV-1a content hash,
   revalidating with a full byte compare on hit (a collision must never
   return another image's verdict). The table is bounded; overflow drops
   it wholesale — correctness never depends on a hit. *)

let memo_capacity = 256
let memo : (int64, image * string * Report.violation list) Hashtbl.t =
  Hashtbl.create memo_capacity
let memo_hits_ = ref 0
let memo_misses_ = ref 0

(* The memo is host-wide shared state (deliberately: replicated audit
   runs scan identical images, sharing the verdicts is the point), so
   serialize access for parallel `--jobs` runs. Scan results are pure
   functions of the image bytes, so sharing across replicas cannot leak
   one replica's state into another — only identical verdicts. *)
let memo_lock = Mutex.create ()

let with_memo_lock f =
  Mutex.lock memo_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock memo_lock) f

let fnv1a64 ~rule img =
  let h = ref 0xcbf29ce484222325L in
  let mix byte =
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) 0x100000001b3L
  in
  Bytes.iter (fun c -> mix (Char.code c)) img.bytes;
  mix (img.va land 0xff);
  mix (Hashtbl.hash (img.name, img.va, img.allowed, img.entries) land 0xffffff);
  String.iter (fun c -> mix (Char.code c)) rule.r_tag;
  !h

let same_image a b =
  a.name = b.name && a.va = b.va && a.allowed = b.allowed
  && a.entries = b.entries
  && Bytes.equal a.bytes b.bytes

let memo_stats () = with_memo_lock (fun () -> (!memo_hits_, !memo_misses_))

let memo_reset () =
  with_memo_lock (fun () ->
      Hashtbl.reset memo;
      memo_hits_ := 0;
      memo_misses_ := 0)

let hex_of_pattern p =
  String.concat " "
    (List.map (Printf.sprintf "%02X")
       (List.init (Bytes.length p) (fun i -> Char.code (Bytes.get p i))))

let audit_uncached ~rule img =
  let vs = ref [] in
  let add ?addr invariant detail =
    vs := Report.v ?addr ~invariant ~image:img.name detail :: !vs
  in
  (* 1. Raw pattern scan, paged with boundary carry. *)
  List.iter
    (fun at ->
      if not (in_allowed img.allowed at) then
        add ~addr:at (Printf.sprintf "gadget.%s-pattern" rule.r_tag)
          (Printf.sprintf "%s at va %#x" (hex_of_pattern rule.r_pattern)
             (img.va + at)))
    (Sky_rewriter.Scan.find_pattern_paged ~pattern:rule.r_pattern img.bytes);
  (* 2. Every-offset self-repairing sweep. *)
  let aligned = aligned_starts img.bytes in
  List.iter
    (fun d ->
      let pat = pattern_off d in
      if not (in_allowed img.allowed pat) then
        if not (Hashtbl.mem aligned d.Decode.off) then
          add ~addr:d.Decode.off
            (Printf.sprintf "gadget.misaligned-%s" rule.r_tag)
            (Printf.sprintf
               "%s decodes at misaligned offset (va %#x, pattern at %#x)"
               rule.r_tag (img.va + d.Decode.off) (img.va + pat)))
    (sweep_every_offset ~rule img.bytes);
  (* 3. Recursive descent from the entry points. *)
  List.iter
    (fun d ->
      let pat = pattern_off d in
      if not (in_allowed img.allowed pat) then
        add ~addr:d.Decode.off
          (Printf.sprintf "gadget.reachable-%s" rule.r_tag)
          (Printf.sprintf "%s reachable from entry (va %#x)" rule.r_tag
             (img.va + d.Decode.off)))
    (reachable_vmfuncs ~rule img.bytes ~entries:img.entries);
  (* 4. Undecodable regions are unverifiable, not trusted. Severity Warn:
     registration still refuses them, but a whole-machine sweep ranks
     them below proven gadget findings. *)
  List.iter
    (fun (off, len) ->
      vs :=
        Report.v ~severity:Report.Warn ~addr:off
          ~invariant:"gadget.unverifiable" ~image:img.name
          (Printf.sprintf "%d undecodable byte%s at va %#x" len
             (if len = 1 then "" else "s")
             (img.va + off))
        :: !vs)
    (Decode.unknown_spans img.bytes);
  Report.sort !vs

let audit_rule ~rule img =
  let h = fnv1a64 ~rule img in
  let hit =
    with_memo_lock (fun () ->
        match Hashtbl.find_opt memo h with
        | Some (cached, tag, vs) when tag = rule.r_tag && same_image cached img ->
          incr memo_hits_;
          Some vs
        | _ ->
          incr memo_misses_;
          None)
  in
  match hit with
  | Some vs -> vs
  | None ->
    let vs = audit_uncached ~rule img in
    with_memo_lock (fun () ->
        if Hashtbl.length memo >= memo_capacity then Hashtbl.reset memo;
        Hashtbl.replace memo h
          ({ img with bytes = Bytes.copy img.bytes }, rule.r_tag, vs));
    vs

let audit img = audit_rule ~rule:vmfunc_rule img

(* The ERIM-style binary scan of the MPK backend: prove a domain's code
   carries no attacker-reachable WRPKRU outside the call gate. *)
let audit_wrpkru img = audit_rule ~rule:wrpkru_rule img
