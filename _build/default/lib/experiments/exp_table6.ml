(** Table 6: inadvertent VMFUNC instructions found by scanning the
    program corpus. *)

open Sky_harness

let run ?(scale = 256) () =
  let rows = Sky_rewriter.Corpus.run ~scale () in
  let paper_counts =
    [ 0; 0; 0; 0; 0; 0; 0; 0; 1 ] (* one hit, in GIMP-2.8 (Other Apps) *)
  in
  Tbl.make
    ~title:"Table 6: inadvertent VMFUNC instructions found by scanning"
    ~header:
      [ "program group"; "avg code size (KB)"; "scanned (KB, scaled)"; "paper"; "ours" ]
    ~notes:
      [
        Printf.sprintf
          "synthetic corpus, code sizes scaled by 1/%d (program counts kept); \
           the GIMP-2.8 hit sits in the immediate of a longer call \
           instruction, as in SS6.7"
          scale;
      ]
    (List.map2
       (fun (r : Sky_rewriter.Corpus.report_row) paper ->
         [
           r.Sky_rewriter.Corpus.group;
           Tbl.fmt_int r.Sky_rewriter.Corpus.avg_code_kb;
           Tbl.fmt_int (r.Sky_rewriter.Corpus.scanned_bytes / 1024);
           string_of_int paper;
           string_of_int r.Sky_rewriter.Corpus.vmfunc_count;
         ])
       rows paper_counts)
