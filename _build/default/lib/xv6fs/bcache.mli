(** Block buffer cache (xv6's [bio.c], LRU over 32 block-sized slots).

    Slots are backed by simulated physical memory, so hits and misses
    have real micro-architectural footprints. Write-through happens via
    the log at commit time; the cache never holds data the disk does not
    (after commit). *)

type t

val nbuf : int
val create : Sky_sim.Machine.t -> t

val get : t -> Sky_sim.Cpu.t -> int -> load:(unit -> bytes) -> bytes
(** Cached block read; [load] fills an LRU victim slot on miss. *)

val put : t -> Sky_sim.Cpu.t -> int -> bytes -> unit
(** Refresh (or insert) the cached copy — used when a transaction
    installs committed blocks. *)

val invalidate : t -> unit
val hits : t -> int
val misses : t -> int
