open Sky_ukernel

type stats = {
  mutable attempts : int;
  mutable retried_ok : int;
  mutable degraded : int;
  mutable lost : int;
  mutable restarts : int;
}

let create_stats () =
  { attempts = 0; retried_ok = 0; degraded = 0; lost = 0; restarts = 0 }

exception Gave_up of Subkernel.call_error

let bump stats f = match stats with Some s -> f s | None -> ()

let call ?(max_attempts = 4) ?(backoff = 2000) ?stats ?timeout
    ?(on_crash = fun _ -> ()) sb ~core ~client ~server_id msg =
  let cpu = Kernel.cpu (Subkernel.kernel sb) ~core in
  let rec go attempt =
    bump stats (fun s -> s.attempts <- s.attempts + 1);
    match Subkernel.call sb ~core ~client ~server_id ?timeout msg with
    | Ok (reply, via) ->
      if attempt > 0 then bump stats (fun s -> s.retried_ok <- s.retried_ok + 1);
      if via = `Slowpath then bump stats (fun s -> s.degraded <- s.degraded + 1);
      reply
    | Error err ->
      if attempt + 1 >= max_attempts then begin
        bump stats (fun s -> s.lost <- s.lost + 1);
        raise (Gave_up err)
      end;
      (* Exponential backoff, charged as client compute. *)
      Sky_sim.Cpu.charge cpu (backoff lsl attempt);
      Sky_trace.Trace.instant ~core ~cat:"recovery" "recovery.retry";
      (match err with
      | Subkernel.Crashed { server_id = sid } ->
        Subkernel.restart_server sb ~server_id:sid;
        bump stats (fun s -> s.restarts <- s.restarts + 1);
        on_crash sid
      | Subkernel.Revoked { server_id = sid } ->
        (* An aborted direct call revoked the binding: re-establish it
           (a top-level revocation degrades inside Subkernel.call and
           never reaches this handler). *)
        Subkernel.rebind sb client ~server_id:sid
      | Subkernel.Timeout _ -> ());
      go (attempt + 1)
  in
  go 0
