(** Guest user-code execution.

    Fetches instruction bytes {e through the simulated MMU} (i-TLB,
    nested page walks, i-cache) and executes them with real register and
    guest-memory semantics; a [Vmfunc] instruction performs the actual
    EPTP switch on the vCPU. This closes the loop on the reproduction's
    central artifact: the trampoline page the Subkernel maps is not just
    scanned — it can be {e run}, and running it really moves the core
    into the server's address space (tested in test/test_core.ml).

    The executor is deliberately small: straight-line code, calls/returns
    and the instruction subset of {!Sky_isa.Insn}. [Syscall] stops
    execution with [`Syscall] (the caller decides what the kernel does);
    returning with the sentinel link address stops with [`Returned]. *)

type stop =
  [ `Returned  (** RET popped the sentinel return address *)
  | `Syscall  (** SYSCALL executed; RIP is past it *)
  | `Fell_off  (** execution left the executable mapping *) ]

exception Exec_fault of string

type regs = int64 array
(** 16 slots indexed by {!Sky_isa.Reg.encoding}. *)

val return_sentinel : int
(** Pre-pushed link address whose RET ends execution. *)

val run :
  Sky_ukernel.Kernel.t ->
  core:int ->
  entry:int ->
  ?regs:regs ->
  ?max_steps:int ->
  unit ->
  stop * regs
(** Execute from virtual address [entry] in whatever address space is
    live on [core] (user mode). The initial RSP must point at a mapped
    stack whose top holds {!return_sentinel} unless [regs] provides one —
    when [regs] is omitted, a fresh 4 KiB stack is mapped in the current
    process with the sentinel pre-pushed.

    @raise Exec_fault on undecodable/unsupported instructions.
    @raise Sky_mmu.Translate.Page_fault on unmapped/forbidden access,
    including instruction fetches from NX pages (W^X enforced for real).
    @raise Sky_mmu.Vmfunc.Invalid_vmfunc as the hardware would. *)
