type kind = Insn | Data

let access cpu kind pa =
  let l1 = match kind with Insn -> Cpu.l1i cpu | Data -> Cpu.l1d cpu in
  if Cache.access l1 pa then Cpu.charge cpu Costs.lat_l1
  else if Cache.access (Cpu.l2 cpu) pa then Cpu.charge cpu Costs.lat_l2
  else if Cache.access (Cpu.l3 cpu) pa then Cpu.charge cpu Costs.lat_l3
  else Cpu.charge cpu Costs.lat_dram

let access_state_only cpu kind pa =
  let l1 = match kind with Insn -> Cpu.l1i cpu | Data -> Cpu.l1d cpu in
  if not (Cache.access l1 pa) then
    if not (Cache.access (Cpu.l2 cpu) pa) then ignore (Cache.access (Cpu.l3 cpu) pa)

let touch_range_state_only cpu kind ~pa ~len =
  if len > 0 then begin
    let line = 64 in
    let first = pa / line and last = (pa + len - 1) / line in
    for l = first to last do
      access_state_only cpu kind (l * line)
    done
  end

let access_uncached cpu = Cpu.charge cpu Costs.lat_dram

let touch_range cpu kind ~pa ~len =
  if len > 0 then begin
    let line = 64 in
    let first = pa / line and last = (pa + len - 1) / line in
    for l = first to last do
      access cpu kind (l * line)
    done
  end

(* Host-side hot lines: a flat direct-mapped memo over the most recent
   TLB hits, keyed by (core, i/d-side, VPN low bits). A probe that
   revalidates its remembered TLB slot (same live (asid, vpn) — ASIDs
   encode PCID and EPTP root, so a hit is also correct across processes
   and EPTP switches) reproduces the exact observable state of a TLB
   hit while skipping the set scan and the surrounding walk machinery
   in the translation layer. Pure host-speed optimization: simulated
   cycles, counters and LRU state are bit-identical.

   Lines hold an OCaml pointer to the owning Tlb.t, compared physically
   on probe, so stale lines from a torn-down machine can never match a
   new machine's structures. Fault-injection scope entry clears all
   lines (registered below) so chaos runs exercise the full path and
   stay bit-identical whether or not lines were warm. *)
module Hotline = struct
  type line = {
    mutable h_tlb : Tlb.t option;
    mutable h_slot : Tlb.slot option;
    mutable h_asid : int;
    mutable h_vpn : int;
  }

  let max_cores = 64
  let lines_per_side = 16

  type table = line array

  let fresh_table () : table =
    Array.init (max_cores * 2 * lines_per_side) (fun _ ->
        { h_tlb = None; h_slot = None; h_asid = 0; h_vpn = 0 })

  (* The memo table is scoped like {!Accel}'s epoch: single-machine runs
     share the process-wide default, parallel shards each bind their own
     ({!with_table}, domain-local) so a fault-scope entry or warm-up in
     one shard never drops another shard's lines — hot-line hits are a
     PMU-visible event, so cross-shard clears would make counters depend
     on shard interleaving. *)
  let default_table = fresh_table ()

  let scoped = Atomic.make 0

  let table_key : table Domain.DLS.key =
    Domain.DLS.new_key (fun () -> default_table)

  let current_table () =
    if Atomic.get scoped = 0 then default_table else Domain.DLS.get table_key

  let with_table tb f =
    let prev = Domain.DLS.get table_key in
    Domain.DLS.set table_key tb;
    Atomic.incr scoped;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set table_key prev;
        Atomic.decr scoped)
      f

  let line_for ~core ~insn ~vpn =
    let side = if insn then 1 else 0 in
    let core = core land (max_cores - 1) in
    (current_table ()).(((core * 2) + side) * lines_per_side
                        + (vpn land (lines_per_side - 1)))

  let probe line ~tlb ~asid ~vpn =
    match line.h_slot with
    | Some slot
      when (match line.h_tlb with Some t -> t == tlb | None -> false)
           && line.h_asid = asid && line.h_vpn = vpn ->
      Tlb.slot_hit tlb slot ~asid ~vpn
    | _ -> None

  let record line ~tlb ~slot ~asid ~vpn =
    line.h_tlb <- Some tlb;
    line.h_slot <- Some slot;
    line.h_asid <- asid;
    line.h_vpn <- vpn

  let clear_all () =
    Array.iter
      (fun l ->
        l.h_tlb <- None;
        l.h_slot <- None)
      (current_table ())

  (* Chaos determinism: entering a fault-injection scope drops every
     hot line, so the translation layer takes the same code path with
     the same site hooks regardless of prior warm-up. *)
  let () = Sky_faults.Fault.on_scope_enter clear_all
end
