(* Tests for the beyond-the-paper features: capabilities, asynchronous
   notifications, temporary-mapping long IPC, the monolithic personality,
   and a randomized whole-system workout of the SkyBridge state machine. *)

open Sky_ukernel
open Sky_kernels

let make ?(variant = Config.Sel4) ?enforce_caps ?long_ipc () =
  let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:64 () in
  let k = Kernel.create ~config:(Config.default variant) machine in
  (k, Ipc.create ?enforce_caps ?long_ipc k)

(* ------------------------------------------------------------------ *)
(* Capabilities                                                        *)
(* ------------------------------------------------------------------ *)

let test_cap_mint_check () =
  let r = Capability.create_registry () in
  let c = Capability.mint r ~owner:1 ~target:7 ~rights:Capability.all_rights ~badge:0 in
  Alcotest.(check bool) "owner holds send" true
    (Capability.check r ~pid:1 ~target:7 ~need:Capability.send_only);
  Alcotest.(check bool) "other pid does not" false
    (Capability.check r ~pid:2 ~target:7 ~need:Capability.send_only);
  Alcotest.(check int) "accessors" 7 (Capability.target c);
  Alcotest.(check bool) "live" true (Capability.is_live r c)

let test_cap_derive_diminishes () =
  let r = Capability.create_registry () in
  let root = Capability.mint r ~owner:1 ~target:7 ~rights:Capability.all_rights ~badge:0 in
  let child = Capability.derive r root ~new_owner:2 ~badge:42 Capability.send_only in
  Alcotest.(check bool) "child can send" true (Capability.rights child).Capability.send;
  Alcotest.(check bool) "child cannot grant" false
    (Capability.rights child).Capability.grant;
  Alcotest.(check int) "badge" 42 (Capability.badge child);
  (* A send-only cap cannot be derived from. *)
  try
    ignore (Capability.derive r child ~new_owner:3 Capability.send_only);
    Alcotest.fail "expected Cap_denied"
  with Capability.Cap_denied _ -> ()

let test_cap_revoke_subtree () =
  let r = Capability.create_registry () in
  let root = Capability.mint r ~owner:1 ~target:7 ~rights:Capability.all_rights ~badge:0 in
  let a = Capability.derive r root ~new_owner:2 Capability.all_rights in
  let b = Capability.derive r a ~new_owner:3 Capability.send_only in
  Capability.revoke r root;
  Alcotest.(check bool) "root survives" true (Capability.is_live r root);
  Alcotest.(check bool) "children dead" false (Capability.is_live r a);
  Alcotest.(check bool) "grandchildren dead" false (Capability.is_live r b);
  Alcotest.(check bool) "pid 3 cut off" false
    (Capability.check r ~pid:3 ~target:7 ~need:Capability.send_only)

let test_cap_enforced_ipc () =
  let k, ipc = make ~enforce_caps:true () in
  let client = Kernel.spawn k ~name:"client" in
  let server = Kernel.spawn k ~name:"server" in
  let ep = Ipc.register ipc server (fun ~core:_ m -> m) in
  Kernel.context_switch k ~core:0 client;
  (* No capability yet: denied. *)
  (try
     ignore (Ipc.call ipc ~core:0 ~client ep (Bytes.create 8));
     Alcotest.fail "expected Cap_denied"
   with Capability.Cap_denied { reason; _ } ->
     Alcotest.(check string) "reason" "no send capability" reason);
  (* Grant, call, revoke, call again. *)
  let cap = Ipc.grant_send ipc ep client in
  Alcotest.(check int) "echo works with cap" 8
    (Bytes.length (Ipc.call ipc ~core:0 ~client ep (Bytes.create 8)));
  Capability.delete (Ipc.caps ipc) cap;
  try
    ignore (Ipc.call ipc ~core:0 ~client ep (Bytes.create 8));
    Alcotest.fail "expected Cap_denied after delete"
  with Capability.Cap_denied _ -> ()

let prop_cap_rights_never_amplify =
  QCheck.Test.make ~name:"derived rights never exceed the parent's" ~count:100
    QCheck.(
      pair (tup3 bool bool bool) (list_of_size (Gen.int_range 1 6) (tup3 bool bool bool)))
    (fun ((s, rcv, g), chain) ->
      let r = Capability.create_registry () in
      let root =
        Capability.mint r ~owner:0 ~target:1
          ~rights:{ Capability.send = s; recv = rcv; grant = g }
          ~badge:0
      in
      let rec go parent owner = function
        | [] -> true
        | (s', r', g') :: rest -> (
          match
            Capability.derive r parent ~new_owner:owner
              { Capability.send = s'; recv = r'; grant = g' }
          with
          | child ->
            let cr = Capability.rights child and pr = Capability.rights parent in
            ((not cr.Capability.send) || pr.Capability.send)
            && ((not cr.Capability.recv) || pr.Capability.recv)
            && ((not cr.Capability.grant) || pr.Capability.grant)
            && go child (owner + 1) rest
          | exception Capability.Cap_denied _ ->
            (* only legal when the parent lacks grant *)
            not (Capability.rights parent).Capability.grant)
      in
      go root 1 chain)

(* ------------------------------------------------------------------ *)
(* Notifications                                                       *)
(* ------------------------------------------------------------------ *)

let test_notification_signal_wait () =
  let k, _ = make () in
  let n = Notification.create k ~name:"irq" in
  Notification.signal n ~core:0 ~badge:0b01;
  Alcotest.(check int) "wait gets badge" 0b01 (Notification.wait n ~core:0);
  try
    ignore (Notification.wait n ~core:0);
    Alcotest.fail "expected Would_block"
  with Notification.Would_block -> ()

let test_notification_coalesce () =
  let k, _ = make () in
  let n = Notification.create k ~name:"n" in
  Notification.signal n ~core:0 ~badge:0b001;
  Notification.signal n ~core:0 ~badge:0b100;
  Notification.signal n ~core:0 ~badge:0b100;
  Alcotest.(check int) "badges OR-coalesce" 0b101 (Notification.wait n ~core:0);
  Alcotest.(check int) "three signals counted" 3 (Notification.signals n)

let test_notification_poll () =
  let k, _ = make () in
  let n = Notification.create k ~name:"n" in
  Alcotest.(check (option int)) "empty poll" None (Notification.poll n ~core:0);
  Notification.signal n ~core:0 ~badge:7;
  Alcotest.(check (option int)) "poll consumes" (Some 7) (Notification.poll n ~core:0);
  Alcotest.(check (option int)) "then empty" None (Notification.poll n ~core:0)

let test_notification_cross_core_timing () =
  let k, _ = make () in
  let n = Notification.create k ~name:"n" in
  (* Signaler far ahead on core 1: the core-0 waiter must advance to the
     signal's delivery time. *)
  Sky_sim.Cpu.charge (Kernel.cpu k ~core:1) 100_000;
  Notification.signal n ~core:1 ~badge:1;
  let w = Notification.wait n ~core:0 in
  Alcotest.(check int) "badge" 1 w;
  Alcotest.(check bool) "waiter advanced past signal time" true
    (Sky_sim.Cpu.cycles (Kernel.cpu k ~core:0) >= 100_000)

let test_notification_multi_waiter_coalesce () =
  let k, _ = make () in
  let n = Notification.create k ~name:"nic-irq" in
  (* Two cores block in recv, the NIC IRQ consumer path. *)
  Alcotest.(check (option int)) "core 1 blocks" None
    (Notification.wait_blocking ~polls:0 n ~core:1);
  Alcotest.(check (option int)) "core 2 blocks" None
    (Notification.wait_blocking ~polls:0 n ~core:2);
  Alcotest.(check (list int)) "both registered, oldest first" [ 1; 2 ]
    (Notification.waiting_cores n);
  (* Three signals race the wakeups: one IPI per blocked remote core on
     the first signal only; the later badges coalesce into the word. *)
  Notification.signal n ~core:0 ~badge:0b001;
  Alcotest.(check int) "one IPI per blocked waiter" 2 (Notification.ipis n);
  Alcotest.(check (list int)) "waiters woken exactly once" []
    (Notification.waiting_cores n);
  Notification.signal n ~core:0 ~badge:0b010;
  Notification.signal n ~core:0 ~badge:0b100;
  Alcotest.(check int) "no IPIs while nobody blocks" 2 (Notification.ipis n);
  (* The first waiter to run consumes the whole coalesced word... *)
  Alcotest.(check (option int)) "union of all three badges" (Some 0b111)
    (Notification.wait_blocking ~polls:0 n ~core:1);
  (* ...and the second finds it empty and re-registers: three signals,
     two woken waiters, one delivered word. *)
  Alcotest.(check (option int)) "second waiter re-blocks" None
    (Notification.wait_blocking ~polls:0 n ~core:2);
  Alcotest.(check (list int)) "re-registered" [ 2 ]
    (Notification.waiting_cores n)

(* ------------------------------------------------------------------ *)
(* Temporary mapping                                                   *)
(* ------------------------------------------------------------------ *)

let roundtrip ipc k ~client ep len =
  let msg = Bytes.create len in
  for _ = 1 to 10 do
    ignore (Ipc.call ipc ~core:0 ~client ep msg)
  done;
  let cpu = Kernel.cpu k ~core:0 in
  let t0 = Sky_sim.Cpu.cycles cpu in
  for _ = 1 to 50 do
    ignore (Ipc.call ipc ~core:0 ~client ep msg)
  done;
  (Sky_sim.Cpu.cycles cpu - t0) / 50

let test_tempmap_semantics_and_crossover () =
  let measure long_ipc len =
    let k, ipc = make ~long_ipc () in
    let client = Kernel.spawn k ~name:"c" in
    let server = Kernel.spawn k ~name:"s" in
    let seen = ref 0 in
    let ep =
      Ipc.register ipc server (fun ~core:_ m ->
          seen := Bytes.length m;
          Bytes.create 8)
    in
    Kernel.context_switch k ~core:0 client;
    let c = roundtrip ipc k ~client ep len in
    Alcotest.(check int) "payload delivered" len !seen;
    c
  in
  (* Small messages: the map/INVLPG overhead loses. *)
  Alcotest.(check bool) "copy wins at 64B" true
    (measure Ipc.Shared_copy 64 < measure Ipc.Temp_map 64);
  (* Multi-page messages: temporary mapping wins. *)
  Alcotest.(check bool) "tempmap wins at 8KB" true
    (measure Ipc.Temp_map 8192 < measure Ipc.Shared_copy 8192)

(* ------------------------------------------------------------------ *)
(* Monolithic personality                                              *)
(* ------------------------------------------------------------------ *)

let test_linux_ipc_slowest_but_works () =
  let per_variant variant =
    let k, ipc = make ~variant () in
    let client = Kernel.spawn k ~name:"c" in
    let server = Kernel.spawn k ~name:"s" in
    let ep = Ipc.register ipc server (fun ~core:_ m -> m) in
    Kernel.context_switch k ~core:0 client;
    roundtrip ipc k ~client ep 8
  in
  let sel4 = per_variant Config.Sel4 and linux = per_variant Config.Linux in
  Alcotest.(check bool)
    (Printf.sprintf "linux socket (%d) slower than seL4 fastpath (%d)" linux sel4)
    true (linux > sel4)

let test_skybridge_on_linux () =
  (* The §10 claim in executable form: the same Subkernel slots under the
     monolithic personality and direct calls still cost ~396 cycles. *)
  let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:64 () in
  let k = Kernel.create ~config:(Config.default Config.Linux) machine in
  let sb = Sky_core.Subkernel.init k in
  let client = Kernel.spawn k ~name:"c" in
  let server = Kernel.spawn k ~name:"s" in
  let sid = Sky_core.Subkernel.register_server sb server (fun ~core:_ m -> m) in
  Sky_core.Subkernel.register_client_to_server sb client ~server_id:sid;
  Kernel.context_switch k ~core:0 client;
  let cpu = Kernel.cpu k ~core:0 in
  ignore (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid (Bytes.create 8));
  let t0 = Sky_sim.Cpu.cycles cpu in
  for _ = 1 to 100 do
    ignore (Sky_core.Subkernel.direct_server_call sb ~core:0 ~client ~server_id:sid (Bytes.create 8))
  done;
  let rt = (Sky_sim.Cpu.cycles cpu - t0) / 100 in
  Alcotest.(check bool) (Printf.sprintf "roundtrip %d ~ 400" rt) true
    (rt >= 396 && rt <= 450)

(* ------------------------------------------------------------------ *)
(* Scheduling policies (§8.1)                                          *)
(* ------------------------------------------------------------------ *)

let sched_cpu () = Sky_sim.Machine.core (Sky_sim.Machine.create ~cores:1 ~mem_mib:1 ()) 0

let test_benno_pick_is_bounded () =
  let cpu = sched_cpu () in
  let s = Scheduler.create Scheduler.Benno in
  let threads = List.init 16 (fun i -> Scheduler.spawn_thread s ~tid:i) in
  (* Block everyone but the last; under Benno the queue holds only that
     one, so every pick examines exactly one entry. *)
  List.iteri (fun i th -> if i < 15 then Scheduler.block s cpu th) threads;
  let before = Scheduler.examined s in
  (match Scheduler.pick s cpu with
  | Some th -> Alcotest.(check int) "picked the runnable one" 15 (Scheduler.tid th)
  | None -> Alcotest.fail "expected a thread");
  Alcotest.(check int) "O(1) pick" 1 (Scheduler.examined s - before)

let test_lazy_pick_is_unbounded () =
  let cpu = sched_cpu () in
  let s = Scheduler.create Scheduler.Lazy_scheduling in
  let threads = List.init 16 (fun i -> Scheduler.spawn_thread s ~tid:i) in
  List.iteri (fun i th -> if i < 15 then Scheduler.block s cpu th) threads;
  let before = Scheduler.examined s in
  (match Scheduler.pick s cpu with
  | Some th -> Alcotest.(check int) "still picks correctly" 15 (Scheduler.tid th)
  | None -> Alcotest.fail "expected a thread");
  Alcotest.(check int) "waded through all stale entries" 16
    (Scheduler.examined s - before)

let test_sched_empty_queue () =
  let cpu = sched_cpu () in
  List.iter
    (fun policy ->
      let s = Scheduler.create policy in
      Alcotest.(check bool) "empty pick" true (Scheduler.pick s cpu = None);
      let th = Scheduler.spawn_thread s ~tid:1 in
      Scheduler.block s cpu th;
      Alcotest.(check bool) "all blocked -> none" true (Scheduler.pick s cpu = None);
      Scheduler.wake s cpu th;
      Alcotest.(check bool) "wake -> found" true (Scheduler.pick s cpu <> None))
    [ Scheduler.Lazy_scheduling; Scheduler.Benno ]

let prop_sched_invariants =
  (* The two policies order differently (lazy keeps a woken thread's old
     queue position; Benno re-enqueues at the tail), but both must uphold:
     a pick never returns a blocked thread; Benno picks in O(1); a pick
     that returns None means the queue drained; and a freshly woken
     thread is always eventually pickable. *)
  QCheck.Test.make ~name:"scheduler invariants under random churn" ~count:100
    QCheck.(
      pair bool
        (list_of_size (Gen.int_range 1 60) (pair (int_bound 2) (int_bound 7))))
    (fun (benno, script) ->
      let policy = if benno then Scheduler.Benno else Scheduler.Lazy_scheduling in
      let cpu = sched_cpu () in
      let s = Scheduler.create policy in
      let threads = Array.init 8 (fun i -> Scheduler.spawn_thread s ~tid:i) in
      let ok = ref true in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 -> Scheduler.block s cpu threads.(x)
          | 1 -> Scheduler.wake s cpu threads.(x)
          | _ -> (
            let before = Scheduler.examined s in
            match Scheduler.pick s cpu with
            | Some th ->
              if not (Scheduler.runnable th) then ok := false;
              if benno && Scheduler.examined s - before <> 1 then ok := false;
              Scheduler.block s cpu th
            | None -> if Scheduler.queue_length s <> 0 then ok := false))
        script;
      (* Liveness: wake someone and the next pick must find a thread. *)
      Scheduler.wake s cpu threads.(0);
      (match Scheduler.pick s cpu with
      | Some th -> if not (Scheduler.runnable th) then ok := false
      | None -> ok := false);
      !ok)

let prop_benno_o1 =
  (* Benno's O(1) invariant, aggregate form: over arbitrary
     wake/block/pick churn, the total entries examined equals exactly
     the number of successful picks (only ever the queue head), and both
     the examined count and the cycles the scheduler charges are
     independent of how many blocked threads exist — a crowd of idle
     bystanders adds nothing to pick cost (the point of the design,
     §8.1). *)
  QCheck.Test.make ~name:"Benno: one examined entry per pick, any population"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 80) (pair (int_bound 2) (int_bound 7)))
    (fun script ->
      let run extra_blocked =
        let cpu = sched_cpu () in
        let s = Scheduler.create Scheduler.Benno in
        let threads = Array.init 8 (fun i -> Scheduler.spawn_thread s ~tid:i) in
        for i = 0 to extra_blocked - 1 do
          Scheduler.block s cpu (Scheduler.spawn_thread s ~tid:(100 + i))
        done;
        let setup_cycles = Sky_sim.Cpu.cycles cpu in
        let picks = ref 0 in
        List.iter
          (fun (op, x) ->
            match op with
            | 0 -> Scheduler.block s cpu threads.(x)
            | 1 -> Scheduler.wake s cpu threads.(x)
            | _ -> (
              match Scheduler.pick s cpu with
              | Some _ -> incr picks
              | None -> ()))
          script;
        (Scheduler.examined s, !picks, Sky_sim.Cpu.cycles cpu - setup_cycles)
      in
      let examined0, picks0, cycles0 = run 0 in
      let examined56, picks56, cycles56 = run 56 in
      examined0 = picks0 && examined56 = examined0 && picks56 = picks0
      && cycles56 = cycles0)

(* ------------------------------------------------------------------ *)
(* Binary images and the loader                                        *)
(* ------------------------------------------------------------------ *)

open Sky_isa

let dirty_text name vaddr =
  {
    Binfmt.name;
    vaddr;
    kind = Binfmt.Text;
    body =
      Encode.encode_all
        [ Insn.Mov_ri (Reg.Rax, 1L); Insn.Vmfunc; Insn.Add_ri (Reg.Rax, 0xD4010F);
          Insn.Ret ];
  }

let test_binfmt_roundtrip () =
  let img =
    {
      Binfmt.entry = 0x400000;
      sections =
        [
          dirty_text ".text" 0x400000;
          { Binfmt.name = ".rodata"; vaddr = 0x600000; kind = Binfmt.Rodata;
            body = Bytes.of_string "\x0f\x01\xd4constants" };
          { Binfmt.name = ".data"; vaddr = 0x700000; kind = Binfmt.Data;
            body = Bytes.make 100 'd' };
        ];
    }
  in
  let img' = Binfmt.decode (Binfmt.encode img) in
  Alcotest.(check int) "entry" img.Binfmt.entry img'.Binfmt.entry;
  Alcotest.(check int) "sections" 3 (List.length img'.Binfmt.sections);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.Binfmt.name b.Binfmt.name;
      Alcotest.(check bool) "body" true (Bytes.equal a.Binfmt.body b.Binfmt.body))
    img.Binfmt.sections img'.Binfmt.sections

let test_binfmt_rejects_garbage () =
  (try
     ignore (Binfmt.decode (Bytes.of_string "ELF?nope"));
     Alcotest.fail "expected Bad_image"
   with Binfmt.Bad_image _ -> ());
  let overlapping =
    {
      Binfmt.entry = 0;
      sections =
        [ { Binfmt.name = "a"; vaddr = 0x1000; kind = Binfmt.Text; body = Bytes.make 8192 '\x90' };
          { Binfmt.name = "b"; vaddr = 0x2000; kind = Binfmt.Data; body = Bytes.make 16 'x' } ];
    }
  in
  try
    Binfmt.validate overlapping;
    Alcotest.fail "expected overlap rejection"
  with Binfmt.Bad_image _ -> ()

let test_loader_section_protections () =
  let k, _ = make () in
  let p = Kernel.spawn k ~name:"app" in
  let img =
    {
      Binfmt.entry = 0x400000;
      sections =
        [
          dirty_text ".text" 0x400000;
          { Binfmt.name = ".rodata"; vaddr = 0x600000; kind = Binfmt.Rodata;
            body = Bytes.of_string "\x0f\x01\xd4" };
          { Binfmt.name = ".data"; vaddr = 0x700000; kind = Binfmt.Data;
            body = Bytes.make 64 'd' };
        ];
    }
  in
  Kernel.load_image k p img;
  let walk va =
    match
      Sky_mmu.Page_table.walk ~mem:(Kernel.mem k) ~root_pa:(Proc.cr3 p) ~va
    with
    | Ok r -> r.Sky_mmu.Page_table.flags
    | Error _ -> Alcotest.failf "va %#x unmapped" va
  in
  let text = walk 0x400000 and ro = walk 0x600000 and data = walk 0x700000 in
  Alcotest.(check bool) "text executable" false text.Sky_mmu.Pte.nx;
  Alcotest.(check bool) "text read-only" false text.Sky_mmu.Pte.writable;
  Alcotest.(check bool) "rodata NX" true ro.Sky_mmu.Pte.nx;
  Alcotest.(check bool) "data writable" true data.Sky_mmu.Pte.writable;
  Alcotest.(check bool) "data NX" true data.Sky_mmu.Pte.nx

let test_multi_section_registration () =
  (* Two dirty text sections + pattern-bearing rodata: registration must
     clean both text sections (with disjoint rewrite pages) and leave the
     rodata byte-identical. *)
  let machine = Sky_sim.Machine.create ~cores:2 ~mem_mib:64 () in
  let k = Kernel.create machine in
  let sb = Sky_core.Subkernel.init k in
  let p = Kernel.spawn k ~name:"app" in
  let ro_body = Bytes.of_string "\x0f\x01\xd4 lookup table \x0f\x01\xd4" in
  Kernel.load_image k p
    {
      Binfmt.entry = 0x400000;
      sections =
        [
          dirty_text ".text" 0x400000;
          dirty_text ".text.hot" 0x500000;
          { Binfmt.name = ".rodata"; vaddr = 0x600000; kind = Binfmt.Rodata;
            body = Bytes.copy ro_body };
        ];
    };
  ignore (Sky_core.Subkernel.register_server sb p (fun ~core:_ m -> m));
  Alcotest.(check bool) "both text sections clean" true
    (Sky_core.Subkernel.proc_is_clean sb p);
  (* Rodata untouched (data may legitimately contain the pattern). *)
  let vcpu = Kernel.vcpu k ~core:0 in
  Kernel.context_switch k ~core:0 p;
  let back =
    Sky_mmu.Translate.read_bytes vcpu (Kernel.mem k) ~va:0x600000
      ~len:(Bytes.length ro_body)
  in
  Alcotest.(check bool) "rodata byte-identical" true (Bytes.equal ro_body back)

(* ------------------------------------------------------------------ *)
(* Randomized whole-system workout                                     *)
(* ------------------------------------------------------------------ *)

(* A random sequence of spawn / register-server / bind / direct-call
   operations must never corrupt the SkyBridge state machine: every call
   that should succeed echoes its payload, every unbound call raises
   Not_registered, and the live identity is always the client's after a
   call completes. Runs with a small EPTP list so eviction is exercised
   too. *)
let prop_subkernel_workout =
  QCheck.Test.make ~name:"random register/bind/call sequences stay coherent"
    ~count:25
    QCheck.(list_of_size (Gen.int_range 5 60) (pair (int_bound 3) small_nat))
    (fun script ->
      let machine = Sky_sim.Machine.create ~cores:4 ~mem_mib:128 () in
      let k = Kernel.create machine in
      let sb = Sky_core.Subkernel.init ~max_eptp:4 k in
      let servers = ref [] in
      let clients = ref [] in
      let bound : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
      let nth l n = List.nth l (n mod List.length l) in
      let ok = ref true in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 ->
            let p = Kernel.spawn k ~name:(Printf.sprintf "c%d" x) in
            clients := p :: !clients
          | 1 ->
            let p = Kernel.spawn k ~name:(Printf.sprintf "s%d" x) in
            let sid =
              Sky_core.Subkernel.register_server sb p (fun ~core:_ m -> m)
            in
            servers := (sid, p) :: !servers
          | 2 ->
            if !servers <> [] && !clients <> [] then begin
              let sid, _ = nth !servers x in
              let c = nth !clients x in
              Sky_core.Subkernel.register_client_to_server sb c ~server_id:sid;
              Hashtbl.replace bound (c.Proc.pid, sid) ()
            end
          | _ ->
            if !servers <> [] && !clients <> [] then begin
              let sid, _ = nth !servers x in
              let c = nth !clients x in
              let core = x mod 4 in
              Kernel.context_switch k ~core c;
              let payload = Bytes.make ((x mod 100) + 1) 'p' in
              let expect_ok = Hashtbl.mem bound (c.Proc.pid, sid) in
              match
                Sky_core.Subkernel.direct_server_call sb ~core ~client:c
                  ~server_id:sid payload
              with
              | reply ->
                if not expect_ok then ok := false;
                if not (Bytes.equal reply payload) then ok := false;
                if Sky_core.Subkernel.current_identity sb ~core <> c.Proc.pid
                then ok := false
              | exception Sky_core.Subkernel.Not_registered _ ->
                if expect_ok then ok := false
            end)
        script;
      !ok)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "extensions"
    [
      ( "capabilities",
        [
          Alcotest.test_case "mint + check" `Quick test_cap_mint_check;
          Alcotest.test_case "derive diminishes" `Quick test_cap_derive_diminishes;
          Alcotest.test_case "revoke subtree" `Quick test_cap_revoke_subtree;
          Alcotest.test_case "enforced on IPC" `Quick test_cap_enforced_ipc;
        ]
        @ qc [ prop_cap_rights_never_amplify ] );
      ( "notifications",
        [
          Alcotest.test_case "signal/wait" `Quick test_notification_signal_wait;
          Alcotest.test_case "badge coalescing" `Quick test_notification_coalesce;
          Alcotest.test_case "poll" `Quick test_notification_poll;
          Alcotest.test_case "cross-core timing" `Quick
            test_notification_cross_core_timing;
          Alcotest.test_case "multi-waiter coalescing" `Quick
            test_notification_multi_waiter_coalesce;
        ] );
      ( "temp_mapping",
        [
          Alcotest.test_case "semantics + crossover" `Quick
            test_tempmap_semantics_and_crossover;
        ] );
      ( "monolithic",
        [
          Alcotest.test_case "linux IPC works, slower" `Quick
            test_linux_ipc_slowest_but_works;
          Alcotest.test_case "skybridge on linux ~400cyc" `Quick
            test_skybridge_on_linux;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "Benno pick O(1)" `Quick test_benno_pick_is_bounded;
          Alcotest.test_case "lazy pick unbounded" `Quick test_lazy_pick_is_unbounded;
          Alcotest.test_case "empty/blocked queues" `Quick test_sched_empty_queue;
        ]
        @ qc [ prop_sched_invariants; prop_benno_o1 ] );
      ( "binfmt",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick test_binfmt_roundtrip;
          Alcotest.test_case "rejects garbage + overlap" `Quick
            test_binfmt_rejects_garbage;
          Alcotest.test_case "loader protections" `Quick
            test_loader_section_protections;
          Alcotest.test_case "multi-section registration" `Quick
            test_multi_section_registration;
        ] );
      ("workout", qc [ prop_subkernel_workout ]);
    ]
