(** The microkernel core: processes, per-core vCPUs, context switches,
    kernel entry/exit, and the hooks SkyBridge latches onto.

    This module is the common substrate shared by the three kernel
    personalities in [lib/kernels]; it owns everything that is the same
    across seL4, Fiasco.OC and Zircon — process/address-space management
    and the mode-switch machinery — while the personalities own their IPC
    paths. *)

type t = {
  machine : Sky_sim.Machine.t;
  config : Config.t;
  vcpus : Sky_mmu.Vcpu.t array;  (** one per core *)
  mutable procs : Proc.t list;
  mutable next_pid : int;
  kernel_text_pa : int;  (** base PA of kernel text (footprint touches) *)
  kernel_data_pa : int;
  mutable running : Proc.t option array;  (** per core *)
  mutable on_context_switch : (t -> core:int -> Proc.t -> unit) list;
      (** SkyBridge installs the next process's EPTP list here (§4.2). *)
  mutable on_spawn : (t -> Proc.t -> unit) list;
}

val create : ?config:Config.t -> Sky_sim.Machine.t -> t
(** Reserves kernel text/data physical ranges and creates one vCPU per
    core ([pcid] per the config). *)

val mem : t -> Sky_mem.Phys_mem.t
val alloc : t -> Sky_mem.Frame_alloc.t
val vcpu : t -> core:int -> Sky_mmu.Vcpu.t
val cpu : t -> core:int -> Sky_sim.Cpu.t

val spawn : t -> name:string -> Proc.t
(** New process with an empty page table and fresh identity frame;
    triggers [on_spawn] hooks. *)

val find_proc : t -> pid:int -> Proc.t

val map_anon : t -> Proc.t -> ?va:int -> ?flags:Sky_mmu.Pte.flags -> int -> int
(** [map_anon t p len]: allocate frames and map them at [va] (heap-bumped
    when omitted); returns the VA. Default flags are user read/write with
    NX set — anonymous memory is data, and the W^X audit rejects any
    writable+executable leaf. *)

val map_frames :
  t -> Proc.t -> va:int -> pa:int -> len:int -> flags:Sky_mmu.Pte.flags -> unit
(** Map existing frames (shared memory). *)

val map_code : t -> Proc.t -> bytes -> int
(** Copy [bytes] into fresh frames mapped read-execute at
    {!Layout.code_va}; records the region in [Proc.code]. *)

val load_image : t -> Proc.t -> Sky_isa.Binfmt.image -> unit
(** Load a {!Sky_isa.Binfmt} executable: map each section with its kind's
    protection (text RX, rodata R/NX, data RW/NX) and record every
    executable section in [Proc.code] so SkyBridge registration scans
    all of them — and only them. *)

val proc_code_bytes : t -> Proc.t -> (int * bytes) list
(** Current contents of each executable region (read back from simulated
    memory — the rewriter patches these in place). *)

val write_code : t -> Proc.t -> va:int -> bytes -> unit
(** Overwrite part of an executable region (binary rewriting). Respects
    nothing — the kernel may write anywhere; W^X applies to user mode. *)

val context_switch : t -> core:int -> Proc.t -> unit
(** Install the process's CR3 on the core's vCPU (charging the CR3 write,
    flushing TLBs unless PCID) and fire the context-switch hooks. No-op
    if the process is already current. *)

val kernel_entry : t -> core:int -> unit
(** SYSCALL + SWAPGS (+ KPTI CR3 write), kernel mode, touch kernel entry
    text (state-only). *)

val kernel_exit : t -> core:int -> unit
(** SWAPGS + SYSRET (+ KPTI CR3 write back), user mode. *)

val touch_kernel_text : t -> core:int -> bytes:int -> off:int -> unit
(** Model executing [bytes] of kernel text starting at offset [off]:
    updates cache state without charging (the measured path constants
    already include warm execution). *)

val touch_kernel_data : t -> core:int -> bytes:int -> off:int -> unit

val send_ipi : t -> from_core:int -> to_core:int -> unit
(** Charge {!Sky_sim.Costs.ipi} on the sender and make the target core's
    clock catch up to the interrupt delivery time. *)

val user_compute : t -> core:int -> cycles:int -> unit
(** Burn user-mode cycles (application logic whose memory behaviour we
    don't model in detail). *)
