(** Tiny single-line HTTP-style codec: [GET /kv/<key>],
    [PUT /kv/<key> <value>], [GET /fs/<name>]; responses are
    [<status> <body>]. Pure functions — the server charges parse cycles
    itself. *)

type request =
  | Kv_get of string
  | Kv_put of string * bytes
  | Fs_get of string

type response = { status : int; body : bytes }

exception Bad_request of string

val parse_request : bytes -> request
val serialize_request : request -> bytes
val parse_response : bytes -> response
val serialize_response : response -> bytes

val ok : bytes -> response
val not_found : response
val bad_request : response
val server_error : response
