(** Cycle-accurate event tracer.

    Per-core bounded ring buffers of spans/instants keyed on *simulated*
    cycles (never wall clock): the clock is installed by
    {!Sky_sim.Machine.create} and reads the core's TSC. Recording never
    charges cycles, so enabling tracing cannot perturb a measurement —
    cycle counts are identical with tracing on or off (asserted in
    [test/test_trace.ml]).

    Alongside the raw event ring the tracer maintains three O(1)-update
    aggregates so exports survive ring overflow:
    - per-category cycle attribution ({!on_charge} hooks {!Sky_sim.Cpu.charge}
      and bills the innermost open span's category),
    - a latency {!Histogram} per span name,
    - folded call-stack self-cycles for flamegraphs.

    {b Contexts.} All tracer state (rings, stacks, aggregates, the
    clock) lives in a {!ctx}. Single-machine runs use the process-wide
    default context and never notice; the parallel scheduler gives each
    shard its own context via {!with_ctx}, bound domain-locally, so
    concurrent shards record into disjoint state and a shard's readout
    is identical whether it ran sequentially or on its own domain. The
    no-context fast path is one atomic load. *)

type ev = {
  name : string;
  cat : string;
  core : int;
  ts : int;  (** simulated cycles at event start *)
  dur : int;  (** span duration in cycles; -1 for an instant *)
}

let is_span e = e.dur >= 0

type ring = {
  mutable buf : ev array;
  mutable filled : int;  (** number of valid entries *)
  mutable next : int;  (** next write position *)
  mutable dropped : int;  (** events overwritten after wrap *)
}

(* An open span on a core's stack. [path] is the ";"-joined ancestry used
   for folded-stack output; [child] accumulates completed child spans'
   cycles so self-time = dur - child. *)
type frame = {
  f_name : string;
  f_cat : string;
  f_path : string;
  f_ts : int;
  mutable f_child : int;
}

let max_cores = 128
let default_capacity = 1 lsl 16

type ctx = {
  mutable c_capacity : int;
  mutable c_clock : int -> int;
  c_rings : ring option array;
  c_stacks : frame list array;
  c_cat_cycles : (string, int ref) Hashtbl.t;
  c_hists : (string, Histogram.t) Hashtbl.t;
  c_folded : (string, int ref) Hashtbl.t;
}

let fresh_ctx () =
  {
    c_capacity = default_capacity;
    c_clock = (fun _ -> 0);
    c_rings = Array.make max_cores None;
    c_stacks = Array.make max_cores [];
    c_cat_cycles = Hashtbl.create 16;
    c_hists = Hashtbl.create 16;
    c_folded = Hashtbl.create 64;
  }

let default_ctx = fresh_ctx ()

(* Number of domains currently bound to a non-default context. Zero on
   every hot path outside parallel runs, so [ctx ()] costs one atomic
   load and a branch. *)
let scoped_ctxs = Atomic.make 0

let ctx_key : ctx Domain.DLS.key = Domain.DLS.new_key (fun () -> default_ctx)

let ctx () =
  if Atomic.get scoped_ctxs = 0 then default_ctx else Domain.DLS.get ctx_key

let with_ctx c f =
  let prev = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key c;
  Atomic.incr scoped_ctxs;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set ctx_key prev;
      Atomic.decr scoped_ctxs)
    f

(* The on/off switch stays process-wide: enabling tracing is a run-mode
   decision, not per-shard state, and an atomic read keeps the disabled
   hot path one load. *)
let enabled = Atomic.make false

let is_enabled () = Atomic.get enabled
let set_clock f = (ctx ()).c_clock <- f
let now ~core = (ctx ()).c_clock core

let clear () =
  let c = ctx () in
  Array.fill c.c_rings 0 max_cores None;
  Array.fill c.c_stacks 0 max_cores [];
  Hashtbl.reset c.c_cat_cycles;
  Hashtbl.reset c.c_hists;
  Hashtbl.reset c.c_folded

let enable ?ring_capacity () =
  clear ();
  let c = ctx () in
  (match ring_capacity with
  | Some cap when cap > 0 -> c.c_capacity <- cap
  | Some _ -> invalid_arg "Trace.enable: ring_capacity <= 0"
  | None -> c.c_capacity <- default_capacity);
  Atomic.set enabled true

let disable () = Atomic.set enabled false

let ring_for c core =
  match c.c_rings.(core) with
  | Some r -> r
  | None ->
    let r = { buf = [||]; filled = 0; next = 0; dropped = 0 } in
    c.c_rings.(core) <- Some r;
    r

let push_ev c core e =
  if core >= 0 && core < max_cores then begin
    let r = ring_for c core in
    if Array.length r.buf = 0 then r.buf <- Array.make c.c_capacity e;
    if r.filled >= Array.length r.buf then r.dropped <- r.dropped + 1
    else r.filled <- r.filled + 1;
    r.buf.(r.next) <- e;
    r.next <- (r.next + 1) mod Array.length r.buf
  end

let bump tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl key (ref n)

let hist_for c name =
  match Hashtbl.find_opt c.c_hists name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.replace c.c_hists name h;
    h

(* ------------------------------------------------------------------ *)
(* Recording API                                                       *)
(* ------------------------------------------------------------------ *)

let instant ~core ?(cat = "") name =
  if is_enabled () && core >= 0 && core < max_cores then
    let c = ctx () in
    push_ev c core { name; cat; core; ts = c.c_clock core; dur = -1 }

(* A span recorded from explicit timestamps — for call sites whose begin
   and end are separated by early-exit paths (e.g. Subkernel calls). *)
let emit_span ~core ~cat name ~ts ~dur =
  if is_enabled () && core >= 0 && core < max_cores then begin
    let c = ctx () in
    push_ev c core { name; cat; core; ts; dur };
    Histogram.add (hist_for c name) dur;
    bump c.c_folded name dur
  end

let span ~core ~cat name f =
  if (not (is_enabled ())) || core < 0 || core >= max_cores then f ()
  else begin
    let c = ctx () in
    let ts0 = c.c_clock core in
    let path =
      match c.c_stacks.(core) with
      | parent :: _ -> parent.f_path ^ ";" ^ name
      | [] -> name
    in
    let fr = { f_name = name; f_cat = cat; f_path = path; f_ts = ts0; f_child = 0 } in
    c.c_stacks.(core) <- fr :: c.c_stacks.(core);
    let finish () =
      (match c.c_stacks.(core) with
      | top :: rest when top == fr -> c.c_stacks.(core) <- rest
      | _ ->
        (* Unbalanced pop (an inner span escaped via an exception we did
           not see): drop frames down to ours. *)
        let rec unwind = function
          | top :: rest -> if top == fr then rest else unwind rest
          | [] -> []
        in
        c.c_stacks.(core) <- unwind c.c_stacks.(core));
      let dur = c.c_clock core - fr.f_ts in
      (match c.c_stacks.(core) with
      | parent :: _ -> parent.f_child <- parent.f_child + dur
      | [] -> ());
      bump c.c_folded fr.f_path (max 0 (dur - fr.f_child));
      Histogram.add (hist_for c fr.f_name) dur;
      push_ev c core { name = fr.f_name; cat = fr.f_cat; core; ts = fr.f_ts; dur }
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

(* Called by {!Sky_sim.Cpu.charge}: bill [c] cycles to the category of
   the innermost open span on [core]. *)
let on_charge ~core n =
  if is_enabled () && core >= 0 && core < max_cores then
    let c = ctx () in
    let cat =
      match c.c_stacks.(core) with fr :: _ -> fr.f_cat | [] -> "untracked"
    in
    bump c.c_cat_cycles cat n

(* Feed a named histogram directly (per-workload-op latencies that are
   not spans). *)
let record_latency name v =
  if is_enabled () then Histogram.add (hist_for (ctx ()) name) v

(* ------------------------------------------------------------------ *)
(* Readout                                                             *)
(* ------------------------------------------------------------------ *)

let events () =
  let c = ctx () in
  let acc = ref [] in
  for core = max_cores - 1 downto 0 do
    match c.c_rings.(core) with
    | None -> ()
    | Some r ->
      let len = Array.length r.buf in
      (* Oldest-first: the ring wraps at [next]. *)
      for i = r.filled downto 1 do
        let idx = (r.next - i + (2 * len)) mod len in
        acc := r.buf.(idx) :: !acc
      done
  done;
  List.sort (fun a b -> if a.ts <> b.ts then compare a.ts b.ts else compare a.core b.core) !acc

let dropped () =
  Array.fold_left
    (fun acc -> function Some r -> acc + r.dropped | None -> acc)
    0 (ctx ()).c_rings

let categories () =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) (ctx ()).c_cat_cycles []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let histograms () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (ctx ()).c_hists []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histogram name = Hashtbl.find_opt (ctx ()).c_hists name

let folded () =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) (ctx ()).c_folded []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
