(** YCSB workloads against the SQLite-like database.

    Workload A is what the paper reports (Figures 9–11): 50% read
    (query) / 50% write (update), Zipfian key choice, on a table of
    10,000 records. The multi-threaded runner places one client thread
    per core; threads share the database handle (same process) and
    contend on the file system's big lock, which is what shapes the
    paper's scalability curves. *)

type kind = A | B | C

let kind_name = function A -> "YCSB-A" | B -> "YCSB-B" | C -> "YCSB-C"

(* Read fraction per workload: A = 50%, B = 95%, C = 100%. *)
let read_fraction = function A -> 0.5 | B -> 0.95 | C -> 1.0

type t = {
  db : Sky_sqldb.Db.t;
  kernel : Sky_ukernel.Kernel.t;
  records : int;
  value_size : int;
  rng : Sky_sim.Rng.t;
}

let create kernel db ~records ~value_size =
  { db; kernel; records; value_size; rng = Sky_sim.Rng.create ~seed:0x9c5b }

(* Load phase: populate the table (not measured). *)
let load t ~core =
  for key = 0 to t.records - 1 do
    Sky_sqldb.Db.insert t.db ~core ~key ~value:(Sky_sim.Rng.bytes t.rng t.value_size)
  done

let one_op t zipf ~core ~read =
  let cpu = Sky_sim.Machine.core t.kernel.Sky_ukernel.Kernel.machine core in
  let t0 = Sky_sim.Cpu.cycles cpu in
  let key = Zipf.next zipf in
  (if read then ignore (Sky_sqldb.Db.query t.db ~core ~key)
   else
     Sky_sqldb.Db.update t.db ~core ~key ~value:(Sky_sim.Rng.bytes t.rng t.value_size)
     |> ignore);
  Sky_trace.Trace.record_latency
    (if read then "ycsb.read" else "ycsb.update")
    (Sky_sim.Cpu.cycles cpu - t0)

(* Run [ops_per_thread] on each of [threads] client threads (thread i on
   core i), interleaving in virtual time. Returns throughput in ops/s
   at the simulated clock. *)
let run t ~kind ~threads ~ops_per_thread =
  let machine = t.kernel.Sky_ukernel.Kernel.machine in
  let n_cores = Sky_sim.Machine.n_cores machine in
  if threads > n_cores then invalid_arg "Workload.run: more threads than cores";
  (* All threads start together: align every core's virtual clock (the
     load phase ran on core 0 only). *)
  Sky_sim.Machine.sync_cores machine;
  let zipfs =
    Array.init threads (fun i ->
        Zipf.create ~items:t.records (Sky_sim.Rng.create ~seed:(0x2170 + i)))
  in
  let rngs = Array.init threads (fun i -> Sky_sim.Rng.create ~seed:(0xabc + i)) in
  let start = Array.init threads (fun i -> Sky_sim.Cpu.cycles (Sky_sim.Machine.core machine i)) in
  let rf = read_fraction kind in
  (* Round-robin interleaving approximates concurrent execution: each
     thread's core clock advances independently; the FS big lock imposes
     the real serialization. *)
  for _round = 1 to ops_per_thread do
    for i = 0 to threads - 1 do
      let read = Sky_sim.Rng.float rngs.(i) < rf in
      one_op t zipfs.(i) ~core:i ~read
    done
  done;
  let elapsed =
    let m = ref 0 in
    for i = 0 to threads - 1 do
      m := max !m (Sky_sim.Cpu.cycles (Sky_sim.Machine.core machine i) - start.(i))
    done;
    !m
  in
  let total_ops = threads * ops_per_thread in
  Sky_sim.Costs.ops_per_sec ~ops:total_ops ~cycles:elapsed
