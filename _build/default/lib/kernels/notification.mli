(** Asynchronous notifications (seL4-style), the other half of a modern
    microkernel's IPC story ("current microkernels usually contain a
    mixture of both synchronous and asynchronous IPCs", §8.1).

    A notification is a word of badge bits. [signal] ORs bits in and, if
    a waiter on another core is blocked, kicks it with an IPI. [wait]
    consumes the word, blocking (in virtual time) until the next signal
    when it is empty. Signals coalesce — N signals before a wait deliver
    one word with the union of the badges. *)

type t

val create : Sky_ukernel.Kernel.t -> name:string -> t

val signal : t -> core:int -> badge:int -> unit
(** Kernel entry + OR the badge in + (when a cross-core waiter is
    blocked) one IPI. *)

val poll : t -> core:int -> int option
(** Non-blocking: the accumulated word, or [None] when empty. *)

val wait : t -> core:int -> int
(** Consume the word; if empty, block until the next pending signal's
    virtual time.
    @raise Would_block if nothing is pending at all. *)

exception Would_block

val signals : t -> int
val waits : t -> int
