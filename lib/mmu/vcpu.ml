(** Virtual CPU: a hardware core plus its architectural translation state.

    Wraps a {!Sky_sim.Cpu} with the registers the MMU cares about (CR3,
    PCID, CPL) and, once the machine has been self-virtualized by the
    Rootkernel, a {!Vmcs}. Before virtualization the vCPU runs "on bare
    metal": guest-physical addresses are host-physical addresses. *)

type mode = User | Kernel

type t = {
  cpu : Sky_sim.Cpu.t;
  mutable cr3 : int;  (** guest-physical address of the PML4 *)
  mutable pcid : int;
  mutable mode : mode;
  mutable vmcs : Vmcs.t option;  (** [Some _] once running in non-root mode *)
  mutable pcid_enabled : bool;
      (** When false (the default for the baseline microkernels, matching
          the TLB pollution measured in Table 1), a CR3 write flushes the
          TLBs. When true, entries are tagged and survive. *)
  mutable pkru : int;
      (** Protection-key rights register (32 bits: AD/WD pair per key).
          0 = every key accessible; only the MPK isolation backend writes
          it (via {!Wrpkru.execute}), and it never interacts with the
          TLBs. *)
}

let create ?(pcid_enabled = false) cpu =
  { cpu; cr3 = 0; pcid = 0; mode = Kernel; vmcs = None; pcid_enabled;
    pkru = 0 }

let cpu t = t.cpu
let virtualized t = t.vmcs <> None

let vmcs_exn t =
  match t.vmcs with
  | Some v -> v
  | None -> invalid_arg "Vcpu: not virtualized"

let enter_non_root t vmcs = t.vmcs <- Some vmcs

(* The TLB ASID tag: composes PCID with the current EPTP *value* (its
   root frame number) so that — as with VPID+EPTP tagging on real
   hardware — neither a PCID-tagged CR3 write nor a VMFUNC EPTP switch
   needs a flush. Tagging by EPTP value rather than list index matters:
   EPTP-list slots are LRU-recycled and re-pointed by the kernel layer,
   so an index tag could match a stale translation after a slot is
   reused for a different EPT. The value tag can only be recycled when
   an EPT root frame is freed, and {!Ept.destroy} bumps the global
   mutation epoch, which flushes every translation structure. *)
let asid t =
  let eptp_part =
    match t.vmcs with
    | Some v when v.Vmcs.vpid_enabled ->
      ((Vmcs.current_eptp v lsr 12) + 1) lsl 16
    | _ -> 0
  in
  eptp_part lor t.pcid

let write_cr3 t ~cr3 ~pcid =
  let core = Sky_sim.Cpu.id t.cpu in
  Sky_trace.Trace.span ~core ~cat:"ctx" "cr3_write" @@ fun () ->
  Sky_sim.Cpu.charge t.cpu Sky_sim.Costs.cr3_write;
  Sky_sim.Pmu.count (Sky_sim.Cpu.pmu t.cpu) Sky_sim.Pmu.Cr3_write;
  t.cr3 <- cr3;
  t.pcid <- (if t.pcid_enabled then pcid else 0);
  if not t.pcid_enabled then begin
    Sky_trace.Trace.instant ~core ~cat:"ctx" "tlb.flush";
    (* An untagged CR3 write flushes everything derived from the guest
       linear address space: leaf TLBs and paging-structure caches. *)
    Sky_sim.Cpu.flush_guest_translation t.cpu
  end

(* INVLPG: invalidate one page's leaf-TLB entries under the current
   ASID, and (as on hardware, which drops paging-structure-cache
   entries regardless of PCID) the covering PSC entries for every ASID. *)
let invlpg t ~va =
  let core = Sky_sim.Cpu.id t.cpu in
  Sky_trace.Trace.instant ~core ~cat:"ctx" "invlpg";
  Sky_sim.Cpu.charge t.cpu Sky_sim.Costs.invlpg;
  let asid = asid t in
  let vpn = va lsr 12 in
  Sky_sim.Tlb.flush_page (Sky_sim.Cpu.itlb t.cpu) ~asid ~vpn;
  Sky_sim.Tlb.flush_page (Sky_sim.Cpu.dtlb t.cpu) ~asid ~vpn;
  Sky_sim.Psc.flush_key (Sky_sim.Cpu.psc_pde t.cpu) ~key:(va lsr 21);
  Sky_sim.Psc.flush_key (Sky_sim.Cpu.psc_pdpte t.cpu) ~key:(va lsr 30);
  Sky_sim.Psc.flush_key (Sky_sim.Cpu.psc_pml4e t.cpu) ~key:(va lsr 39)

let set_mode t m = t.mode <- m
