lib/xv6fs/superblock.ml: Bytes Int32 Sky_blockdev
