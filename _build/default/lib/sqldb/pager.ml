(** Database pager: fixed-size pages of a single FS file, with an
    internal page cache.

    The cache is the reason the paper's Query workload barely exercises
    IPC ("the SQLite3 has an internal cache to handle the recent read
    requests, which thus avoids a large number of IPC operations",
    §6.5): hits are served from the client's own memory. Cached pages
    live in simulated guest frames, so hits still cost real (warm) cache
    accesses. *)

let page_size = Sky_blockdev.Ramdisk.block_size
let cache_slots = 32

type slot = { pa : int; mutable page_no : int; mutable stamp : int }

type t = {
  fs : Sky_xv6fs.Fs_iface.t;
  inum : int;
  mem : Sky_mem.Phys_mem.t;
  kernel : Sky_ukernel.Kernel.t;
  slots : slot array;
  index : (int, slot) Hashtbl.t;
  mutable clock : int;
  mutable npages : int;
  mutable hits : int;
  mutable misses : int;
  mutable page_writes : int;
}

let create kernel fs ~core ~inum =
  let machine = kernel.Sky_ukernel.Kernel.machine in
  let pa =
    Sky_mem.Frame_alloc.alloc_frames machine.Sky_sim.Machine.alloc
      ~count:(cache_slots * page_size / 4096)
  in
  let size = fs.Sky_xv6fs.Fs_iface.size ~core inum in
  {
    fs;
    inum;
    mem = machine.Sky_sim.Machine.mem;
    kernel;
    slots =
      Array.init cache_slots (fun i ->
          { pa = pa + (i * page_size); page_no = -1; stamp = 0 });
    index = Hashtbl.create cache_slots;
    clock = 0;
    npages = (size + page_size - 1) / page_size;
    hits = 0;
    misses = 0;
    page_writes = 0;
  }

let touch t ~core slot =
  Sky_sim.Memsys.touch_range
    (Sky_ukernel.Kernel.cpu t.kernel ~core)
    Sky_sim.Memsys.Data ~pa:slot.pa ~len:page_size

let victim t =
  let v = ref t.slots.(0) in
  Array.iter (fun s -> if s.stamp < !v.stamp then v := s) t.slots;
  if !v.page_no >= 0 then Hashtbl.remove t.index !v.page_no;
  !v

let fill t ~core slot page_no data =
  Sky_mem.Phys_mem.write_bytes t.mem slot.pa data;
  slot.page_no <- page_no;
  slot.stamp <- t.clock;
  Hashtbl.replace t.index page_no slot;
  touch t ~core slot

let read t ~core page_no =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.index page_no with
  | Some slot ->
    t.hits <- t.hits + 1;
    slot.stamp <- t.clock;
    touch t ~core slot;
    Sky_mem.Phys_mem.read_bytes t.mem slot.pa page_size
  | None ->
    t.misses <- t.misses + 1;
    let data =
      t.fs.Sky_xv6fs.Fs_iface.read ~core ~inum:t.inum ~off:(page_no * page_size)
        ~len:page_size
    in
    let data =
      if Bytes.length data < page_size then begin
        let full = Bytes.make page_size '\000' in
        Bytes.blit data 0 full 0 (Bytes.length data);
        full
      end
      else data
    in
    fill t ~core (victim t) page_no data;
    data

(* Write-through: the FS sees every page write (it is the FS traffic the
   Table 4 experiment measures). *)
let write t ~core page_no data =
  if Bytes.length data <> page_size then invalid_arg "Pager.write: bad size";
  t.clock <- t.clock + 1;
  t.page_writes <- t.page_writes + 1;
  t.fs.Sky_xv6fs.Fs_iface.write ~core ~inum:t.inum ~off:(page_no * page_size) data;
  (match Hashtbl.find_opt t.index page_no with
  | Some slot ->
    slot.stamp <- t.clock;
    Sky_mem.Phys_mem.write_bytes t.mem slot.pa data;
    touch t ~core slot
  | None -> fill t ~core (victim t) page_no data);
  if page_no >= t.npages then t.npages <- page_no + 1

let alloc_page t ~core =
  let page_no = t.npages in
  write t ~core page_no (Bytes.make page_size '\000');
  page_no

let npages t = t.npages
let hits t = t.hits
let misses t = t.misses
let page_writes t = t.page_writes
